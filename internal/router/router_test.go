package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/query"
)

// fakeVenue is one venue's worth of canned state on a fake backend.
type fakeVenue struct {
	Regions []c2mn.RegionCount `json:"regions"` // canonical order
	Pairs   []c2mn.PairCount   `json:"pairs"`   // canonical order
	Stats   c2mn.EngineStats   `json:"stats"`
}

// fakeBackend emulates the msserve surface the router touches:
// readiness, venue discovery, the unified query endpoint, per-venue
// stats, feeds, and the migration primitives. It logs every mutating
// call so tests can assert the router's sequencing.
type fakeBackend struct {
	t   *testing.T
	srv *httptest.Server

	mu       sync.Mutex
	venues   map[string]*fakeVenue
	drained  map[string]string // venue -> redirect ("" = plain drain)
	calls    []string
	feedHook func(w http.ResponseWriter, r *http.Request) bool // true = handled
	token    string
}

func newFakeBackend(t *testing.T) *fakeBackend {
	f := &fakeBackend{t: t, venues: map[string]*fakeVenue{}, drained: map[string]string{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/venues", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		ids := make([]string, 0, len(f.venues))
		for id := range f.venues {
			ids = append(ids, id)
		}
		f.mu.Unlock()
		sort.Strings(ids)
		rows := make([]map[string]any, len(ids))
		for i, id := range ids {
			rows[i] = map[string]any{"venue": id}
		}
		writeJSON(w, http.StatusOK, map[string]any{"venues": rows})
	})
	mux.HandleFunc("POST /v1/query", f.handleQuery)
	mux.HandleFunc("GET /v1/venues/{venue}/stats", func(w http.ResponseWriter, r *http.Request) {
		v, ok := f.venue(r.PathValue("venue"))
		if !ok {
			f.writeUnknownVenue(w, r.PathValue("venue"))
			return
		}
		writeJSON(w, http.StatusOK, v.Stats)
	})
	mux.HandleFunc("POST /v1/venues/{venue}/feed", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		hook := f.feedHook
		f.mu.Unlock()
		if hook != nil && hook(w, r) {
			return
		}
		f.record("feed " + r.PathValue("venue"))
		if id := r.Header.Get("X-Request-ID"); id != "" {
			w.Header().Set("X-Request-ID", id)
		}
		writeJSON(w, http.StatusOK, map[string]any{"venue": r.PathValue("venue"), "fed": 1})
	})
	drain := func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		var body struct {
			RedirectTo string `json:"redirect_to"`
		}
		json.NewDecoder(r.Body).Decode(&body)
		f.mu.Lock()
		f.drained[r.PathValue("venue")] = body.RedirectTo
		f.mu.Unlock()
		f.record(fmt.Sprintf("drain %s redirect=%q", r.PathValue("venue"), body.RedirectTo))
		writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	}
	// Mounted on both the pre-consolidation path (the migration
	// coordinator's client uses it) and the /v1/admin twin, like the
	// real msserve.
	mux.HandleFunc("POST /v1/venues/{venue}/drain", drain)
	mux.HandleFunc("POST /v1/admin/venues/{venue}/drain", drain)
	mux.HandleFunc("DELETE /v1/venues/{venue}/drain", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		f.mu.Lock()
		delete(f.drained, r.PathValue("venue"))
		f.mu.Unlock()
		f.record("undrain " + r.PathValue("venue"))
		writeJSON(w, http.StatusOK, map[string]string{"status": "serving"})
	})
	mux.HandleFunc("POST /v1/venues/{venue}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		f.record("snapshot " + r.PathValue("venue"))
		writeJSON(w, http.StatusOK, map[string]string{"venue": r.PathValue("venue")})
	})
	mux.HandleFunc("GET /v1/venues/{venue}/snapshot/file", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		v, ok := f.venue(r.PathValue("venue"))
		if !ok {
			f.writeUnknownVenue(w, r.PathValue("venue"))
			return
		}
		f.record("fetch " + r.PathValue("venue"))
		buf, _ := json.Marshal(v)
		w.Write(buf)
	})
	mux.HandleFunc("PUT /v1/venues/{venue}/snapshot/file", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		id := r.PathValue("venue")
		buf, _ := io.ReadAll(r.Body)
		var v fakeVenue
		if err := json.Unmarshal(buf, &v); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]wireError{"error": {Code: "snapshot_corrupt", Message: err.Error()}})
			return
		}
		f.mu.Lock()
		f.venues[id] = &v
		f.mu.Unlock()
		f.record("restore " + id)
		writeJSON(w, http.StatusOK, map[string]any{"venue": id, "status": "restored"})
	})
	mux.HandleFunc("DELETE /v1/venues/{venue}", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		id := r.PathValue("venue")
		f.mu.Lock()
		delete(f.venues, id)
		f.mu.Unlock()
		f.record("unload " + id)
		writeJSON(w, http.StatusOK, map[string]string{"venue": id, "status": "unloaded"})
	})
	mux.HandleFunc("POST /v1/admin/venues/{venue}/retrain", func(w http.ResponseWriter, r *http.Request) {
		if !f.authorized(w, r) {
			return
		}
		id := r.PathValue("venue")
		if _, ok := f.venue(id); !ok {
			f.writeUnknownVenue(w, id)
			return
		}
		f.record("retrain " + id)
		writeJSON(w, http.StatusOK, map[string]any{
			"venue": id, "decision": map[string]any{"outcome": "swapped"},
		})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeBackend) authorized(w http.ResponseWriter, r *http.Request) bool {
	f.mu.Lock()
	token := f.token
	f.mu.Unlock()
	if token == "" {
		return true
	}
	if r.Header.Get("Authorization") != "Bearer "+token {
		writeJSON(w, http.StatusUnauthorized, map[string]wireError{"error": {Code: "unauthorized", Message: "bad token"}})
		return false
	}
	return true
}

func (f *fakeBackend) venue(id string) (*fakeVenue, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.venues[id]
	return v, ok
}

func (f *fakeBackend) record(call string) {
	f.mu.Lock()
	f.calls = append(f.calls, call)
	f.mu.Unlock()
}

func (f *fakeBackend) callLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

func (f *fakeBackend) writeUnknownVenue(w http.ResponseWriter, id string) {
	writeJSON(w, http.StatusNotFound, map[string]wireError{"error": {
		Code: "unknown_venue", Message: fmt.Sprintf("c2mn: unknown venue: %q", id),
	}})
}

// handleQuery serves single-venue-scope queries from the canned
// counts, truncating to K like the real registry.
func (f *fakeBackend) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]wireError{"error": {Code: "invalid_argument", Message: err.Error()}})
		return
	}
	if len(req.Venues) != 1 {
		f.t.Errorf("fake backend got a query for %d venues; the router must scatter per venue", len(req.Venues))
		writeJSON(w, http.StatusBadRequest, map[string]wireError{"error": {Code: "invalid_query", Message: "want one venue"}})
		return
	}
	id := req.Venues[0]
	v, ok := f.venue(id)
	if !ok {
		f.writeUnknownVenue(w, id)
		return
	}
	res := c2mn.QueryResult{Kind: req.Kind, Scope: c2mn.ScopeVenue, K: req.K, Scanned: []string{id}}
	if req.Kind == c2mn.QueryFrequentPairs {
		res.Pairs = query.TruncatePairCounts(v.Pairs, req.K)
	} else {
		res.Regions = query.TruncateRegionCounts(v.Regions, req.K)
	}
	writeJSON(w, http.StatusOK, queryResponse{QueryResult: res})
}

// testRouter builds a router over the fakes and runs one health sweep.
func testRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router {
	t.Helper()
	for _, f := range fakes {
		cfg.Backends = append(cfg.Backends, f.srv.URL)
	}
	if cfg.SettleDelay == 0 {
		cfg.SettleDelay = time.Millisecond
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	return rt
}

func routerServer(t *testing.T, rt *Router) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return srv
}

func TestRouterForwardsToOwnerWithRequestID(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	b.venues["south"] = &fakeVenue{}
	rt := testRouter(t, Config{}, a, b)
	ts := routerServer(t, rt)

	for venue, host := range map[string]*fakeBackend{"north": a, "south": b} {
		resp, err := http.Post(ts.URL+"/v1/venues/"+venue+"/feed", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feed %s status = %s", venue, resp.Status)
		}
		// The router generates an X-Request-ID when the client sent
		// none, and the echo survives the backend round trip.
		if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
			t.Fatalf("feed %s X-Request-ID = %q, want a 16-char generated ID", venue, id)
		}
		if got := host.callLog(); len(got) != 1 || got[0] != "feed "+venue {
			t.Fatalf("backend for %s saw calls %v", venue, got)
		}
	}

	// A client-supplied ID is preserved, not replaced.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/venues/north/feed", strings.NewReader("{}"))
	req.Header.Set("X-Request-ID", "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this" {
		t.Fatalf("X-Request-ID = %q, want the client's own", got)
	}
}

func TestRouterNeverRetriesBackpressure(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	hits := 0
	a.feedHook = func(w http.ResponseWriter, r *http.Request) bool {
		hits++
		w.Header().Set("Retry-After", "7")
		writeJSON(w, http.StatusTooManyRequests, map[string]wireError{"error": {Code: "backlog", Message: "c2mn: annotation backlog"}})
		return true
	}
	rt := testRouter(t, Config{Retries: 3}, a)
	ts := routerServer(t, rt)

	resp, err := http.Post(ts.URL+"/v1/venues/north/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s, want 429 passed through", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the backend's own %q", got, "7")
	}
	if !strings.Contains(string(body), "backlog") {
		t.Fatalf("body %s lost the backend's error", body)
	}
	if hits != 1 {
		t.Fatalf("backend saw %d requests; 429 must never be retried", hits)
	}
}

func TestRouterDeadBackendYields502AndUnready(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{Retries: 1}, a)
	ts := routerServer(t, rt)

	// Kill the backend after discovery marked it ready.
	a.srv.Close()
	resp, err := http.Post(ts.URL+"/v1/venues/north/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %s, want 502", resp.Status)
	}
	var e struct {
		Error wireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "backend_unreachable" {
		t.Fatalf("code = %q, want backend_unreachable", e.Error.Code)
	}
	if e.Error.RequestID == "" {
		t.Fatal("router error payload lost the request ID")
	}
	// The failure also marked the backend unready, so the next request
	// fails fast with no_backend instead of re-dialing a corpse.
	if ready := rt.readyBackends(); len(ready) != 0 {
		t.Fatalf("dead backend still listed ready: %v", ready)
	}
	resp2, err := http.Post(ts.URL+"/v1/venues/north/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-markdown status = %s, want 503", resp2.Status)
	}
	var e2 struct {
		Error wireError `json:"error"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&e2); err != nil {
		t.Fatal(err)
	}
	if e2.Error.Code != "no_backend" {
		t.Fatalf("code = %q, want no_backend", e2.Error.Code)
	}
}

func TestRouterFollowsMigrationRedirectOnce(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	b.venues["other"] = &fakeVenue{}
	// a is mid-cutover: feeds for north redirect to b.
	a.feedHook = func(w http.ResponseWriter, r *http.Request) bool {
		w.Header().Set("Location", b.srv.URL+"/v1/venues/north/feed")
		w.WriteHeader(http.StatusTemporaryRedirect)
		return true
	}
	// b hosts north by the time the redirect is chased.
	b.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{}, a, b)
	ts := routerServer(t, rt)

	// Pin north to a so the router's first hop hits the redirecting
	// backend regardless of hash placement.
	rt.mu.Lock()
	rt.pins["north"] = a.srv.URL
	rt.mu.Unlock()

	resp, err := http.Post(ts.URL+"/v1/venues/north/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want the redirect followed to 200", resp.Status)
	}
	if got := b.callLog(); len(got) != 1 || got[0] != "feed north" {
		t.Fatalf("redirect target saw %v", got)
	}
}

// randomCounts builds a venue's canned counts in canonical order.
func randomCounts(rng *rand.Rand) *fakeVenue {
	nRegions := 1 + rng.Intn(12)
	regions := make([]c2mn.RegionCount, 0, nRegions)
	for id := 1; id <= nRegions; id++ {
		if rng.Intn(3) == 0 {
			continue
		}
		regions = append(regions, c2mn.RegionCount{Region: c2mn.RegionID(id), Count: 1 + rng.Intn(50)})
	}
	pairs := make([]c2mn.PairCount, 0)
	for a := 1; a <= nRegions; a++ {
		for b := a + 1; b <= nRegions; b++ {
			if rng.Intn(4) == 0 {
				pairs = append(pairs, c2mn.PairCount{A: c2mn.RegionID(a), B: c2mn.RegionID(b), Count: 1 + rng.Intn(20)})
			}
		}
	}
	v := &fakeVenue{
		Regions: query.TruncateRegionCounts(query.MergeRegionCounts(regions, nil), query.AllCounts),
		Pairs:   query.TruncatePairCounts(query.MergePairCounts(pairs, nil), query.AllCounts),
	}
	return v
}

// TestRouterScatterMatchesBruteForce is the exactness property: for
// random per-venue counts spread over several backends, the router's
// fleet (and venues-scope) merge must equal a brute-force recount
// over the concatenation of every venue's counts — the same guarantee
// internal/query gives in-process.
func TestRouterScatterMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)
		backends := []*fakeBackend{a, b, c}
		nVenues := 2 + rng.Intn(5)
		var regionLists [][]c2mn.RegionCount
		var pairLists [][]c2mn.PairCount
		venueIDs := make([]string, 0, nVenues)
		for i := 0; i < nVenues; i++ {
			id := fmt.Sprintf("venue-%d", i)
			v := randomCounts(rng)
			backends[rng.Intn(len(backends))].venues[id] = v
			regionLists = append(regionLists, v.Regions)
			pairLists = append(pairLists, v.Pairs)
			venueIDs = append(venueIDs, id)
		}
		rt := testRouter(t, Config{}, a, b, c)
		ts := routerServer(t, rt)

		k := 1 + rng.Intn(6)
		for _, kind := range []c2mn.QueryKind{c2mn.QueryPopularRegions, c2mn.QueryFrequentPairs} {
			buf, _ := json.Marshal(queryRequest{Query: c2mn.Query{Kind: kind, Scope: c2mn.ScopeFleet, K: k}})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Fatal(err)
			}
			var got queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: fleet %s status %s", seed, kind, resp.Status)
			}
			sortedIDs := append([]string(nil), venueIDs...)
			sort.Strings(sortedIDs)
			if fmt.Sprint(got.Scanned) != fmt.Sprint(sortedIDs) {
				t.Fatalf("seed %d: scanned %v, want %v", seed, got.Scanned, sortedIDs)
			}
			if got.Scope != c2mn.ScopeFleet || got.K != k {
				t.Fatalf("seed %d: scope/k = %s/%d", seed, got.Scope, got.K)
			}
			if kind == c2mn.QueryFrequentPairs {
				want := query.TruncatePairCounts(query.MergePairCounts(pairLists...), k)
				if fmt.Sprint(got.Pairs) != fmt.Sprint(want) {
					t.Fatalf("seed %d: fleet pairs = %v, want brute force %v", seed, got.Pairs, want)
				}
			} else {
				want := query.TruncateRegionCounts(query.MergeRegionCounts(regionLists...), k)
				if fmt.Sprint(got.Regions) != fmt.Sprint(want) {
					t.Fatalf("seed %d: fleet regions = %v, want brute force %v", seed, got.Regions, want)
				}
			}
		}

		// Venues scope over an explicit subset, in request order.
		subset := venueIDs[:1+rng.Intn(nVenues)]
		buf, _ := json.Marshal(queryRequest{Query: c2mn.Query{
			Kind: c2mn.QueryPopularRegions, Venues: subset, K: k, PerVenue: true,
		}})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		var got queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fmt.Sprint(got.Scanned) != fmt.Sprint(subset) {
			t.Fatalf("seed %d: venues-scope scanned %v, want request order %v", seed, got.Scanned, subset)
		}
		want := query.TruncateRegionCounts(query.MergeRegionCounts(regionLists[:len(subset)]...), k)
		if fmt.Sprint(got.Regions) != fmt.Sprint(want) {
			t.Fatalf("seed %d: venues-scope regions = %v, want %v", seed, got.Regions, want)
		}
		if len(subset) > 1 && len(got.PerVenue) != len(subset) {
			t.Fatalf("seed %d: per_venue has %d entries, want %d", seed, len(got.PerVenue), len(subset))
		}
	}
}

func TestRouterScatterPagination(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	a.venues["v0"] = &fakeVenue{Regions: []c2mn.RegionCount{{Region: 1, Count: 9}, {Region: 2, Count: 5}, {Region: 3, Count: 1}}}
	b.venues["v1"] = &fakeVenue{Regions: []c2mn.RegionCount{{Region: 2, Count: 4}, {Region: 4, Count: 2}}}
	rt := testRouter(t, Config{}, a, b)
	ts := routerServer(t, rt)

	// Full merged ranking: 1:9, 2:9, 4:2, 3:1 (count desc, ID asc).
	var pages []c2mn.RegionCount
	body := queryRequest{Query: c2mn.Query{Kind: c2mn.QueryPopularRegions, Scope: c2mn.ScopeFleet, K: 10}, PageSize: 3}
	for page := 0; ; page++ {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		var got queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		pages = append(pages, got.Regions...)
		if got.NextCursor == "" {
			break
		}
		body = queryRequest{Cursor: got.NextCursor}
		if page > 3 {
			t.Fatal("pagination never terminated")
		}
	}
	want := []c2mn.RegionCount{{Region: 1, Count: 9}, {Region: 2, Count: 9}, {Region: 4, Count: 2}, {Region: 3, Count: 1}}
	if fmt.Sprint(pages) != fmt.Sprint(want) {
		t.Fatalf("paged concatenation = %v, want %v", pages, want)
	}
}

func TestRouterMigrationSequence(t *testing.T) {
	src, dst := newFakeBackend(t), newFakeBackend(t)
	src.token, dst.token = "hunter2", "hunter2"
	src.venues["north"] = &fakeVenue{
		Regions: []c2mn.RegionCount{{Region: 1, Count: 3}},
		Stats:   c2mn.EngineStats{FedRecords: 42},
	}
	dst.venues["north"] = &fakeVenue{} // cold copy awaiting restore
	rt := testRouter(t, Config{BackendToken: "hunter2"}, src, dst)

	// Pin to the source first so the migration has a deterministic
	// starting owner whatever the hash says.
	rt.mu.Lock()
	rt.pins["north"] = src.srv.URL
	rt.mu.Unlock()

	report, err := rt.Migrate(context.Background(), "north", dst.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if report.From != src.srv.URL || report.To != dst.srv.URL || report.Status != "migrated" {
		t.Fatalf("report = %+v", report)
	}

	// The source saw: plain drain, snapshot, fetch, cutover drain with
	// redirect, unload — in that order.
	got := src.callLog()
	want := []string{
		`drain north redirect=""`,
		"snapshot north",
		"fetch north",
		fmt.Sprintf("drain north redirect=%q", dst.srv.URL),
		"unload north",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("source call sequence = %v, want %v", got, want)
	}
	if got := dst.callLog(); fmt.Sprint(got) != fmt.Sprint([]string{"restore north"}) {
		t.Fatalf("target call sequence = %v", got)
	}
	// The canned state moved intact.
	if v, ok := dst.venue("north"); !ok || v.Stats.FedRecords != 42 {
		t.Fatalf("restored venue state = %+v", v)
	}
	if _, stillThere := src.venue("north"); stillThere {
		t.Fatal("source still hosts the migrated venue")
	}
	// Routing now pins to the target.
	owner, err := rt.owner("north")
	if err != nil {
		t.Fatal(err)
	}
	if owner != dst.srv.URL {
		t.Fatalf("post-migration owner = %q, want %q", owner, dst.srv.URL)
	}
	// A second migration to the same place is a cheap no-op.
	report2, err := rt.Migrate(context.Background(), "north", dst.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if report2.Status != "already there" {
		t.Fatalf("repeat migration status = %q", report2.Status)
	}
}

func TestRouterMigrationRollsBackOnRestoreFailure(t *testing.T) {
	src, dst := newFakeBackend(t), newFakeBackend(t)
	src.venues["north"] = &fakeVenue{Stats: c2mn.EngineStats{FedRecords: 7}}
	// No cold copy on dst: the restore will 404 and the migration must
	// undrain the source and leave routing where it was.
	dstMux := http.NewServeMux()
	dstMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	dstMux.HandleFunc("GET /v1/venues", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"venues": []any{}})
	})
	dstMux.HandleFunc("PUT /v1/venues/{venue}/snapshot/file", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		writeJSON(w, http.StatusNotFound, map[string]wireError{"error": {Code: "unknown_venue", Message: "no such venue"}})
	})
	dst.srv.Close()
	dst.srv = httptest.NewServer(dstMux)
	t.Cleanup(dst.srv.Close)

	rt := testRouter(t, Config{}, src)
	// Register the replacement dst server manually.
	rt.mu.Lock()
	rt.backends[dst.srv.URL] = &backendState{url: dst.srv.URL, ready: true, venues: map[string]bool{}}
	rt.pins["north"] = src.srv.URL
	rt.mu.Unlock()

	_, err := rt.Migrate(context.Background(), "north", dst.srv.URL)
	if err == nil {
		t.Fatal("migration with no cold target copy must fail")
	}
	log := src.callLog()
	if log[len(log)-1] != "undrain north" {
		t.Fatalf("source call log %v does not end in the rollback undrain", log)
	}
	owner, err := rt.owner("north")
	if err != nil {
		t.Fatal(err)
	}
	if owner != src.srv.URL {
		t.Fatalf("owner after failed migration = %q, want unchanged %q", owner, src.srv.URL)
	}
}

func TestRouterMigrationConflict(t *testing.T) {
	src := newFakeBackend(t)
	src.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{}, src)
	rt.mu.Lock()
	rt.migrating["north"] = true
	rt.mu.Unlock()
	_, err := rt.Migrate(context.Background(), "north", src.srv.URL)
	if err == nil || !strings.Contains(err.Error(), "already in progress") {
		t.Fatalf("concurrent migration error = %v, want migration conflict", err)
	}
}

func TestRouterAdminPlane(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["north"] = &fakeVenue{}
	rt := testRouter(t, Config{AdminToken: "s3cret"}, a)
	ts := routerServer(t, rt)

	// Tokenless admin calls bounce.
	resp, err := http.Get(ts.URL + "/admin/backends")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless admin status = %s, want 401", resp.Status)
	}

	authed := func(method, path string, body string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		req.Header.Set("Authorization", "Bearer s3cret")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp = authed(http.MethodGet, "/admin/backends", "")
	var table struct {
		Backends []backendInfo `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(table.Backends) != 1 || !table.Backends[0].Ready || fmt.Sprint(table.Backends[0].Venues) != "[north]" {
		t.Fatalf("backend table = %+v", table.Backends)
	}

	// Add a second backend at runtime; it becomes routable immediately.
	b := newFakeBackend(t)
	b.venues["south"] = &fakeVenue{}
	resp = authed(http.MethodPost, "/admin/backends", fmt.Sprintf(`{"url":%q}`, b.srv.URL))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add backend status = %s", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/v1/venues/south/feed", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed via added backend = %s", resp.Status)
	}

	// Assignments list both venues with their backends.
	resp = authed(http.MethodGet, "/admin/assignments", "")
	var asg struct {
		Assignments []assignment `json:"assignments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&asg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(asg.Assignments) != 2 {
		t.Fatalf("assignments = %+v", asg.Assignments)
	}

	// Pins override the hash and are visible in assignments.
	resp = authed(http.MethodPost, "/admin/pins", fmt.Sprintf(`{"venue":"north","backend":%q}`, b.srv.URL))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin status = %s", resp.Status)
	}
	owner, err := rt.owner("north")
	if err != nil {
		t.Fatal(err)
	}
	if owner != b.srv.URL {
		t.Fatalf("pinned owner = %q, want %q", owner, b.srv.URL)
	}
	resp = authed(http.MethodDelete, "/admin/pins?venue=north", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpin status = %s", resp.Status)
	}

	// Removing a backend takes it out of routing.
	resp = authed(http.MethodDelete, "/admin/backends?url="+b.srv.URL, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove backend status = %s", resp.Status)
	}
	if got := rt.readyBackends(); len(got) != 1 || got[0] != a.srv.URL {
		t.Fatalf("ready backends after removal = %v", got)
	}
}

func TestRouterReadyzReflectsBackends(t *testing.T) {
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := routerServer(t, rt)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-table readyz = %s, want 503", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %s, want 200 regardless of backends", resp.Status)
	}
}

func TestRouterStatsAggregation(t *testing.T) {
	a, b := newFakeBackend(t), newFakeBackend(t)
	a.venues["v0"] = &fakeVenue{Stats: c2mn.EngineStats{FedRecords: 10, StoredSequences: 2}}
	b.venues["v1"] = &fakeVenue{Stats: c2mn.EngineStats{FedRecords: 5, StoredSequences: 1}}
	rt := testRouter(t, Config{}, a, b)
	ts := routerServer(t, rt)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Venues map[string]c2mn.EngineStats `json:"venues"`
		Totals c2mn.EngineStats            `json:"totals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Venues) != 2 {
		t.Fatalf("stats venues = %v", stats.Venues)
	}
	if stats.Totals.FedRecords != 15 || stats.Totals.StoredSequences != 3 {
		t.Fatalf("totals = %+v", stats.Totals)
	}
}
