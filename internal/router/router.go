package router

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"c2mn"
	"c2mn/internal/lru"
)

// Config tunes a Router. The zero value of every optional field picks
// a sensible default (see New).
type Config struct {
	// Backends seeds the backend table with msserve base URLs
	// (e.g. "http://10.0.0.7:8080"). More can be added and removed at
	// runtime through /admin/backends.
	Backends []string

	// AdminToken gates the router's own /admin plane behind
	// `Authorization: Bearer <token>`. Empty leaves it open.
	AdminToken string

	// BackendToken is the bearer token the router presents on the
	// backend admin calls a migration makes (drain, snapshot,
	// transfer, restore, unload). Empty sends no Authorization header;
	// it must match the backends' -admin-token.
	BackendToken string

	// HealthInterval is the period of the background health sweep
	// (default 2s). Each sweep probes every backend's /readyz and,
	// when ready, refreshes its hosted-venue list from /v1/venues.
	HealthInterval time.Duration

	// Retries bounds how many times a forwarded request is retried on
	// a transport error — connection refused/reset before any response
	// byte — with jittered exponential backoff (default 2). HTTP error
	// responses, 429 backpressure included, are never retried: the
	// backend answered, and its Retry-After belongs to the client.
	Retries int

	// MaxBody caps buffered request bodies (default 32 MiB). Bodies
	// are buffered so a transport-level retry can replay them.
	MaxBody int64

	// SettleDelay is how long the migration coordinator waits between
	// the stats samples it compares to decide the drained venue has
	// quiesced (default 100ms; tests shrink it).
	SettleDelay time.Duration

	// WatchHeartbeat is the comment-frame heartbeat period on client
	// /v1/watch streams (default 15s; tests shrink it). Upstream
	// subscriptions inherit the backends' own cadence.
	WatchHeartbeat time.Duration

	// WatchIdleTimeout bounds how long a venue's upstream watch
	// subscription may go without a single frame — event or heartbeat —
	// before the relay abandons the connection and resubscribes through
	// owner resolution (default 60s: four missed 15s upstream
	// heartbeats). A stream can only trip it when its backend stops
	// producing entirely: a wedged process, or a half-open connection
	// left by a peer that died without closing. The same watchdog also
	// rechecks ownership, unparking relays left on a backend that still
	// hosts a venue it no longer owns (a health flap or re-pin while the
	// stale stream keeps heartbeating).
	WatchIdleTimeout time.Duration

	// WatchConnectTimeout bounds the initial gather of a client
	// /v1/watch stream: every watched venue must deliver its first
	// upstream snapshot within it (default 15s). A venue whose owner
	// never resolves — its backend down and staying down — would
	// otherwise leave the stream heartbeating forever with no data,
	// where the poll path returns an error; past the deadline the
	// stream ends with a terminal goodbye and the client's reconnect
	// retries against whatever has recovered.
	WatchConnectTimeout time.Duration

	// Client issues every backend request. The default disables
	// automatic redirect following — the router re-forwards
	// mid-migration 307s itself, exactly once.
	Client *http.Client

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Router is the stateless routing tier. Create with New, mount as an
// http.Handler, and run the health loop with Run.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux

	mu        sync.RWMutex
	backends  map[string]*backendState
	pins      map[string]string // venue → backend URL, overriding HRW
	migrating map[string]bool   // venues with an in-flight migration

	// Scatter partial cache (see scatter.go): per-(backend, venue)
	// single-venue partials keyed by the canonical sub-query body and
	// validated against the owning backend's ETag with conditional
	// requests, so a fleet query only re-fetches venues whose stores
	// actually moved.
	partialMu sync.Mutex
	partials  *lru.Cache[string, scatterPartial]

	// Partial-cache counters, reported on /admin/backends.
	partialHits   atomic.Int64 // 304: cached partial reused as-is
	partialMisses atomic.Int64 // full fetch: cold key or moved store
	partialRevals atomic.Int64 // conditional requests sent

	// watchStop is closed by StopWatches when the router drains; open
	// /v1/watch client streams emit a terminal goodbye and return so
	// the HTTP server's Shutdown wait covers them (see watch.go).
	watchStop     chan struct{}
	watchStopOnce sync.Once
}

// backendState is the router's view of one msserve process.
type backendState struct {
	url     string
	ready   bool
	checked time.Time       // last probe
	lastErr string          // last probe failure, "" when healthy
	venues  map[string]bool // hosted venues per the last discovery
}

// New builds a Router over the configured backends. The backend table
// starts entirely unready; call CheckNow (or wait one HealthInterval
// of Run) before routing.
func New(cfg Config) (*Router, error) {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("router: negative retries %d", cfg.Retries)
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 32 << 20
	}
	if cfg.SettleDelay <= 0 {
		cfg.SettleDelay = 100 * time.Millisecond
	}
	if cfg.WatchHeartbeat <= 0 {
		cfg.WatchHeartbeat = 15 * time.Second
	}
	if cfg.WatchIdleTimeout <= 0 {
		cfg.WatchIdleTimeout = 60 * time.Second
	}
	if cfg.WatchConnectTimeout <= 0 {
		cfg.WatchConnectTimeout = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	if client.CheckRedirect == nil {
		// Redirects are routing decisions here: a 307 from a draining
		// venue must be re-forwarded by the router, not chased by the
		// transport (which would also leak backend addresses to retry
		// logic).
		client.CheckRedirect = func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		}
	}
	rt := &Router{
		cfg:       cfg,
		client:    client,
		backends:  map[string]*backendState{},
		pins:      map[string]string{},
		migrating: map[string]bool{},
		partials:  lru.New[string, scatterPartial](scatterCacheEntries),
		watchStop: make(chan struct{}),
	}
	for _, u := range cfg.Backends {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("router: backend %q: want an http(s) base URL", u)
		}
		rt.backends[u] = &backendState{url: u, venues: map[string]bool{}}
	}
	rt.mux = rt.routes()
	return rt, nil
}

// ServeHTTP dispatches to the router's route table, stamping every
// request with an X-Request-ID (generated when the client sent none)
// that is echoed on the response and forwarded to the backends.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(requestIDHeader) == "" {
		r.Header.Set(requestIDHeader, newRequestID())
	}
	w.Header().Set(requestIDHeader, r.Header.Get(requestIDHeader))
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		// Mux-generated 404/405s under /v1 get the typed envelope like
		// every router- or backend-originated error (see wire.go).
		ew := &envelopeWriter{ResponseWriter: w, r: r}
		rt.mux.ServeHTTP(ew, r)
		ew.finish(rt)
		return
	}
	rt.mux.ServeHTTP(w, r)
}

// requestIDHeader correlates one request across the router and the
// backend that served it; both embed it in /v1 error payloads.
const requestIDHeader = "X-Request-ID"

// newRequestID returns a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// routes assembles the route table: the router's own health and admin
// planes, plus the proxied /v1 tree (see proxy.go and scatter.go).
func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	// The router's own probes. Liveness is unconditional; readiness
	// requires at least one ready backend — a router that can place
	// nothing should be pulled from its load balancer.
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /v1/readyz", rt.handleReadyz)
	// Admin plane: backend table, placement, migration. Canonical
	// under /v1/admin/ — mirroring the backends' consolidation — with
	// the pre-consolidation /admin/* mounts kept as deprecated aliases
	// steering to the successor.
	adminRoutes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /backends", rt.handleListBackends},
		{"POST /backends", rt.handleAddBackend},
		{"DELETE /backends", rt.handleRemoveBackend},
		{"GET /assignments", rt.handleAssignments},
		{"POST /pins", rt.handleSetPin},
		{"DELETE /pins", rt.handleDeletePin},
		{"POST /migrate", rt.handleMigrate},
	}
	for _, a := range adminRoutes {
		method, path, _ := strings.Cut(a.pattern, " ")
		h := rt.admin(a.h)
		mux.HandleFunc(method+" /v1/admin"+path, h)
		mux.HandleFunc(method+" /admin"+path, deprecatedAdmin(h))
	}
	// The backends' consolidated admin tree (/v1/admin/venues/...)
	// proxies to the venue's owner verbatim — the backend enforces its
	// own token, and the client's Authorization header is forwarded.
	// POST /v1/admin/venues places a new venue like POST /v1/venues;
	// the venue-scoped rest goes through the retrain/migration guard.
	mux.HandleFunc("POST /v1/admin/venues", rt.handleLoadVenue)
	mux.HandleFunc("/v1/admin/venues/{venue}", rt.handleVenueScoped)
	mux.HandleFunc("/v1/admin/venues/{venue}/{rest...}", rt.handleAdminVenueScoped)
	// Proxied data plane.
	mux.HandleFunc("POST /v1/query", rt.handleQuery)
	mux.HandleFunc("GET /v1/query/popular-regions", rt.handleTopKSugar)
	mux.HandleFunc("GET /v1/query/frequent-pairs", rt.handleTopKSugar)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/venues", rt.handleListVenues)
	mux.HandleFunc("POST /v1/venues", rt.handleLoadVenue)
	mux.HandleFunc("/v1/venues/{venue}", rt.handleVenueScoped)
	mux.HandleFunc("/v1/venues/{venue}/{rest...}", rt.handleVenueScoped)
	mux.HandleFunc("POST /v1/annotate", rt.handleBareVenuePath)
	mux.HandleFunc("POST /v1/feed", rt.handleBareVenuePath)
	mux.HandleFunc("POST /v1/flush", rt.handleFlush)
	// Continuous queries: the fleet push plane (see watch.go). The
	// venue-scoped literal pattern outranks the {rest...} catch-alls
	// above, so watch streams never hit the buffering proxy path.
	mux.HandleFunc("GET /v1/watch", rt.handleWatch)
	mux.HandleFunc("GET /v1/venues/{venue}/watch", rt.handleWatch)
	return mux
}

// StopWatches tells every open client watch stream to say goodbye and
// close. Call it when the drain starts, before http.Server.Shutdown —
// standing streams never go idle on their own, so Shutdown would
// otherwise wait out its whole timeout. Idempotent.
func (rt *Router) StopWatches() {
	rt.watchStopOnce.Do(func() { close(rt.watchStop) })
}

// Run drives the health loop until ctx is canceled: one immediate
// sweep so routing works as soon as Run starts, then one per
// HealthInterval.
func (rt *Router) Run(ctx context.Context) {
	rt.CheckNow(ctx)
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckNow(ctx)
		}
	}
}

// CheckNow probes every backend once, concurrently: GET /readyz
// decides readiness, and a ready backend's /v1/venues refreshes the
// hosted-venue discovery that fleet queries and HRW placement use.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.mu.RLock()
	urls := make([]string, 0, len(rt.backends))
	for u := range rt.backends {
		urls = append(urls, u)
	}
	rt.mu.RUnlock()
	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			rt.probe(ctx, u)
		}(u)
	}
	wg.Wait()
}

// probe checks one backend and folds the result into the table.
func (rt *Router) probe(ctx context.Context, url string) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthInterval)
	defer cancel()
	ready, venues, err := rt.probeBackend(ctx, url)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b, ok := rt.backends[url]
	if !ok {
		return // removed mid-probe
	}
	wasReady := b.ready
	b.checked = time.Now()
	b.ready = ready
	if err != nil {
		b.lastErr = err.Error()
	} else {
		b.lastErr = ""
	}
	if venues != nil {
		b.venues = venues
	}
	if wasReady != ready {
		rt.cfg.Logf("backend %s: ready=%v (%v)", url, ready, err)
	}
}

// probeBackend performs the two probe requests. A nil venues map
// means "no fresh discovery" (keep what we had).
func (rt *Router) probeBackend(ctx context.Context, url string) (ready bool, venues map[string]bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, nil, fmt.Errorf("readyz: %s", resp.Status)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/venues", nil)
	if err != nil {
		return true, nil, err
	}
	resp, err = rt.client.Do(req)
	if err != nil {
		return true, nil, err
	}
	defer resp.Body.Close()
	var list struct {
		Venues []struct {
			Venue string `json:"venue"`
		} `json:"venues"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return true, nil, fmt.Errorf("decoding venue list: %w", err)
	}
	venues = make(map[string]bool, len(list.Venues))
	for _, v := range list.Venues {
		venues[v.Venue] = true
	}
	return true, venues, nil
}

// markUnreachable flags a backend unready after a forward exhausted
// its retries, so placement stops picking it before the next sweep
// confirms.
func (rt *Router) markUnreachable(url string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if b, ok := rt.backends[url]; ok && b.ready {
		b.ready = false
		b.lastErr = err.Error()
		rt.cfg.Logf("backend %s: marked unready (%v)", url, err)
	}
}

// owner resolves where a venue's traffic goes: the explicit pin if
// one exists, else HRW over the ready backends that host the venue,
// else — for venues nobody hosts yet, e.g. a fresh load — HRW over
// all ready backends. Fails with c2mn.ErrNoBackend when nothing is
// ready (or the pin names a removed backend).
func (rt *Router) owner(venue string) (string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ownerLocked(venue)
}

func (rt *Router) ownerLocked(venue string) (string, error) {
	if pinned, ok := rt.pins[venue]; ok {
		if _, exists := rt.backends[pinned]; exists {
			return pinned, nil
		}
		return "", fmt.Errorf("%w: venue %q pinned to removed backend %q", c2mn.ErrNoBackend, venue, pinned)
	}
	var hosts, ready []string
	for u, b := range rt.backends {
		if !b.ready {
			continue
		}
		ready = append(ready, u)
		if b.venues[venue] {
			hosts = append(hosts, u)
		}
	}
	if len(hosts) > 0 {
		return RendezvousOwner(venue, hosts), nil
	}
	if len(ready) == 0 {
		return "", fmt.Errorf("%w: routing venue %q", c2mn.ErrNoBackend, venue)
	}
	return RendezvousOwner(venue, ready), nil
}

// knownVenues returns the fleet's venue universe — every venue hosted
// by a ready backend, plus pinned venues — sorted. This is the venue
// list a fleet-scoped query expands to.
func (rt *Router) knownVenues() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	set := map[string]bool{}
	for _, b := range rt.backends {
		if !b.ready {
			continue
		}
		for v := range b.venues {
			set[v] = true
		}
	}
	for v := range rt.pins {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// readyBackends returns the ready backend URLs, sorted.
func (rt *Router) readyBackends() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]string, 0, len(rt.backends))
	for u, b := range rt.backends {
		if b.ready {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	noStore(w)
	if len(rt.readyBackends()) > 0 {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready backends"})
}

// admin wraps a handler with the router's bearer-token gate. Admin
// responses are uncacheable by construction: beyond being stale the
// moment placement moves, a cache in front of a token-gated endpoint
// could replay an authorized response to an unauthorized caller.
func (rt *Router) admin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		noStore(w)
		if rt.cfg.AdminToken != "" {
			token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(rt.cfg.AdminToken)) != 1 {
				w.Header().Set("WWW-Authenticate", "Bearer")
				rt.writeError(w, r, http.StatusUnauthorized, errors.New("admin endpoint requires a valid bearer token"))
				return
			}
		}
		h(w, r)
	}
}

// deprecatedAdmin marks a pre-consolidation /admin/* mount: same
// wrapped handler as its /v1/admin twin, plus RFC 8594-style headers
// steering clients to the consolidated successor.
func deprecatedAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// backendInfo is one row of the /admin/backends listing.
type backendInfo struct {
	URL           string   `json:"url"`
	Ready         bool     `json:"ready"`
	LastCheckUnix int64    `json:"last_check_unix,omitempty"`
	LastError     string   `json:"last_error,omitempty"`
	Venues        []string `json:"venues"`
}

func (rt *Router) handleListBackends(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	out := make([]backendInfo, 0, len(rt.backends))
	for _, b := range rt.backends {
		info := backendInfo{URL: b.url, Ready: b.ready, LastError: b.lastErr, Venues: []string{}}
		if !b.checked.IsZero() {
			info.LastCheckUnix = b.checked.Unix()
		}
		for v := range b.venues {
			info.Venues = append(info.Venues, v)
		}
		sort.Strings(info.Venues)
		out = append(out, info)
	}
	rt.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	rt.partialMu.Lock()
	entries := rt.partials.Len()
	rt.partialMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"backends": out,
		"scatter_cache": map[string]any{
			"entries":       entries,
			"hits":          rt.partialHits.Load(),
			"misses":        rt.partialMisses.Load(),
			"revalidations": rt.partialRevals.Load(),
		},
	})
}

func (rt *Router) handleAddBackend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody)).Decode(&req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	u := strings.TrimSuffix(strings.TrimSpace(req.URL), "/")
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("backend %q: want an http(s) base URL", req.URL))
		return
	}
	rt.mu.Lock()
	if _, ok := rt.backends[u]; !ok {
		rt.backends[u] = &backendState{url: u, venues: map[string]bool{}}
	}
	rt.mu.Unlock()
	// Probe immediately so the new backend can take traffic without
	// waiting out a health interval.
	rt.probe(r.Context(), u)
	writeJSON(w, http.StatusCreated, map[string]string{"url": u, "status": "added"})
}

func (rt *Router) handleRemoveBackend(w http.ResponseWriter, r *http.Request) {
	u := strings.TrimSuffix(r.URL.Query().Get("url"), "/")
	if u == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("pass ?url=<backend base URL>"))
		return
	}
	rt.mu.Lock()
	_, ok := rt.backends[u]
	delete(rt.backends, u)
	rt.mu.Unlock()
	if !ok {
		rt.writeError(w, r, http.StatusNotFound, fmt.Errorf("backend %q not in the table", u))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"url": u, "status": "removed"})
}

// assignment is one row of the /admin/assignments listing: where a
// venue's traffic currently goes and why.
type assignment struct {
	Venue   string `json:"venue"`
	Backend string `json:"backend,omitempty"`
	Pinned  bool   `json:"pinned,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (rt *Router) handleAssignments(w http.ResponseWriter, r *http.Request) {
	venues := rt.knownVenues()
	out := make([]assignment, 0, len(venues))
	rt.mu.RLock()
	for _, v := range venues {
		row := assignment{Venue: v}
		_, row.Pinned = rt.pins[v]
		b, err := rt.ownerLocked(v)
		if err != nil {
			row.Error = err.Error()
		} else {
			row.Backend = b
		}
		out = append(out, row)
	}
	rt.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"assignments": out})
}

func (rt *Router) handleSetPin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Venue   string `json:"venue"`
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody)).Decode(&req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.Backend = strings.TrimSuffix(req.Backend, "/")
	if req.Venue == "" || req.Backend == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("venue and backend are required"))
		return
	}
	rt.mu.Lock()
	_, known := rt.backends[req.Backend]
	if known {
		rt.pins[req.Venue] = req.Backend
	}
	rt.mu.Unlock()
	if !known {
		rt.writeError(w, r, http.StatusNotFound, fmt.Errorf("backend %q not in the table", req.Backend))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": req.Venue, "backend": req.Backend, "status": "pinned"})
}

func (rt *Router) handleDeletePin(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("venue")
	if v == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("pass ?venue="))
		return
	}
	rt.mu.Lock()
	_, ok := rt.pins[v]
	delete(rt.pins, v)
	rt.mu.Unlock()
	if !ok {
		rt.writeError(w, r, http.StatusNotFound, fmt.Errorf("venue %q is not pinned", v))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"venue": v, "status": "unpinned"})
}

func (rt *Router) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Venue string `json:"venue"`
		To    string `json:"to"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody)).Decode(&req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Venue == "" || req.To == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("venue and to are required"))
		return
	}
	report, err := rt.Migrate(r.Context(), req.Venue, strings.TrimSuffix(req.To, "/"))
	if err != nil {
		switch {
		case errors.Is(err, c2mn.ErrMigrationConflict):
			rt.writeError(w, r, http.StatusConflict, err)
		case errors.Is(err, c2mn.ErrNoBackend):
			rt.writeError(w, r, http.StatusServiceUnavailable, err)
		case errors.Is(err, c2mn.ErrUnknownVenue):
			rt.writeError(w, r, http.StatusNotFound, err)
		default:
			rt.writeError(w, r, http.StatusBadGateway, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, report)
}
