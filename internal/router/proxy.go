package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"time"

	"c2mn"
)

// handleVenueScoped forwards any /v1/venues/{venue}[/...] request to
// the venue's owning backend: annotate, feed, flush, the query
// sugars, per-venue stats, snapshot and drain admin, unload.
func (rt *Router) handleVenueScoped(w http.ResponseWriter, r *http.Request) {
	rt.forwardToOwner(w, r, r.PathValue("venue"))
}

// handleAdminVenueScoped proxies the backends' consolidated admin
// tree (/v1/admin/venues/{venue}/...) to the venue's owner, with one
// router-side guard: a retrain trigger against a venue mid-migration
// is refused before it reaches the backend. The migration is moving a
// settled snapshot of exactly the serving state; a hot swap landing
// under it would rotate the model the snapshot's identity guards were
// checked against and void the cutover.
func (rt *Router) handleAdminVenueScoped(w http.ResponseWriter, r *http.Request) {
	venue := r.PathValue("venue")
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/retrain") {
		rt.mu.RLock()
		migrating := rt.migrating[venue]
		rt.mu.RUnlock()
		if migrating {
			rt.writeError(w, r, http.StatusConflict,
				fmt.Errorf("%w: venue %q is migrating; retry after the cutover", c2mn.ErrMigrationConflict, venue))
			return
		}
	}
	rt.forwardToOwner(w, r, venue)
}

// handleBareVenuePath forwards the bare data-plane paths (/v1/annotate,
// /v1/feed) that name their venue by ?venue= — or, matching msserve's
// sole-venue convenience, implicitly when the fleet serves exactly one.
func (rt *Router) handleBareVenuePath(w http.ResponseWriter, r *http.Request) {
	venue := r.URL.Query().Get("venue")
	if venue == "" {
		known := rt.knownVenues()
		if len(known) != 1 {
			rt.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("%d venue(s) in the fleet: pass ?venue=", len(known)))
			return
		}
		venue = known[0]
	}
	rt.forwardToOwner(w, r, venue)
}

// handleLoadVenue places a new venue: HRW over the ready backends
// decides where POST /v1/venues lands (the body names server-side
// file paths, so the owning backend loads from its own disk).
func (rt *Router) handleLoadVenue(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.writeBodyError(w, r, err)
		return
	}
	var req struct {
		Venue string `json:"venue"`
	}
	// Tolerate a malformed body here: the backend owns request
	// validation and will phrase the 400 itself.
	_ = json.Unmarshal(body, &req)
	venue := req.Venue
	if venue == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("venue is required"))
		return
	}
	backend, err := rt.owner(venue)
	if err != nil {
		rt.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	rt.forward(w, r, backend, body)
}

// forwardToOwner resolves the venue's owner and forwards the request,
// buffering the body so transport-level retries can replay it.
func (rt *Router) forwardToOwner(w http.ResponseWriter, r *http.Request, venue string) {
	if venue == "" {
		rt.writeError(w, r, http.StatusBadRequest, errors.New("empty venue ID"))
		return
	}
	backend, err := rt.owner(venue)
	if err != nil {
		rt.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.writeBodyError(w, r, err)
		return
	}
	rt.forward(w, r, backend, body)
}

// writeBodyError phrases a request-body read failure.
func (rt *Router) writeBodyError(w http.ResponseWriter, r *http.Request, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		rt.writeError(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
		return
	}
	rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
}

// forward proxies one buffered request to a backend and streams the
// response back verbatim — status, headers and body untouched, so
// backend answers (429 backpressure with its Retry-After included)
// reach the client exactly as the backend wrote them. Transport
// errors — no response received — are retried with jittered backoff
// up to cfg.Retries times; a mid-migration 307 is followed once,
// transparently, to the redirecting venue's new owner.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, backend string, body []byte) {
	target := backend + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	resp, err := rt.roundTrip(r.Context(), r.Method, target, r.Header, body)
	if err != nil {
		rt.markUnreachable(backend, err)
		rt.writeError(w, r, http.StatusBadGateway,
			fmt.Errorf("backend %s unreachable: %w", backend, err))
		return
	}
	if resp.StatusCode == http.StatusTemporaryRedirect {
		if loc := resp.Header.Get("Location"); loc != "" {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			redirected, err := rt.roundTrip(r.Context(), r.Method, loc, r.Header, body)
			if err != nil {
				rt.writeError(w, r, http.StatusBadGateway,
					fmt.Errorf("following migration redirect to %s: %w", loc, err))
				return
			}
			resp = redirected
		}
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		h[k] = vv
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// roundTrip issues one backend request with the bounded retry policy.
// Only transport errors retry: a received response — any status — is
// the backend's answer and is returned as-is.
func (rt *Router) roundTrip(ctx context.Context, method, target string, header http.Header, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			// Exponential backoff with full jitter: sleep a uniform
			// slice of 25ms·2^attempt so synchronized retries from
			// concurrent requests spread out.
			backoff := time.Duration(rand.Int64N(int64(25*time.Millisecond) << attempt))
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, target, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		copyForwardHeaders(req.Header, header)
		resp, err := rt.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// copyForwardHeaders copies the client's headers onto the outbound
// backend request, dropping the hop-by-hop set.
func copyForwardHeaders(dst, src http.Header) {
	for k, vv := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Te", "Trailer", "Transfer-Encoding", "Upgrade", "Proxy-Connection", "Host":
			continue
		}
		dst[http.CanonicalHeaderKey(k)] = vv
	}
}

// backendJSON issues one JSON request on the router's own behalf
// (health probes aside, this is the migration coordinator's client):
// bounded retries on transport errors, the backend admin token
// attached, and non-2xx responses turned into errors carrying the
// backend's own message.
func (rt *Router) backendJSON(ctx context.Context, method, target string, body []byte, out any) error {
	_, _, err := rt.backendJSONCond(ctx, method, target, body, "", out)
	return err
}

// backendJSONCond is backendJSON with HTTP freshness: a non-empty
// ifNoneMatch is sent as If-None-Match, and a 304 answer returns
// notModified=true without touching out. The response's ETag (empty
// when the backend minted none) is returned so callers can label what
// they cache.
func (rt *Router) backendJSONCond(ctx context.Context, method, target string, body []byte, ifNoneMatch string, out any) (etag string, notModified bool, err error) {
	header := http.Header{}
	if body != nil {
		header.Set("Content-Type", "application/json")
	}
	if rt.cfg.BackendToken != "" {
		header.Set("Authorization", "Bearer "+rt.cfg.BackendToken)
	}
	if ifNoneMatch != "" {
		header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := rt.roundTrip(ctx, method, target, header, body)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	etag = resp.Header.Get("ETag")
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		return etag, true, nil
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
	if err != nil {
		return "", false, fmt.Errorf("%s %s: reading response: %w", method, target, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return "", false, backendError(method, target, resp.StatusCode, buf)
	}
	if out == nil {
		return etag, false, nil
	}
	if err := json.Unmarshal(buf, out); err != nil {
		return "", false, fmt.Errorf("%s %s: decoding response: %w", method, target, err)
	}
	return etag, false, nil
}

// backendError folds a backend's typed /v1 error payload into a Go
// error, mapping the wire codes that have library sentinels back onto
// them so errors.Is works across the process boundary.
func backendError(method, target string, status int, body []byte) error {
	var payload struct {
		Error wireError `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	var sentinel error
	if err := json.Unmarshal(body, &payload); err == nil && payload.Error.Message != "" {
		msg = payload.Error.Message
		switch payload.Error.Code {
		case "unknown_venue":
			sentinel = c2mn.ErrUnknownVenue
		case "invalid_query":
			sentinel = c2mn.ErrInvalidQuery
		case "snapshot_mismatch":
			sentinel = c2mn.ErrSnapshotMismatch
		case "snapshot_conflict":
			sentinel = c2mn.ErrSnapshotConflict
		case "snapshot_corrupt":
			sentinel = c2mn.ErrSnapshotCorrupt
		}
	}
	err := fmt.Errorf("%s %s: HTTP %d: %s", method, target, status, msg)
	if sentinel != nil {
		err = fmt.Errorf("%w: %w", sentinel, err)
	}
	return err
}

// venuePath builds a backend /v1/venues/{venue} subresource URL.
func venuePath(backend, venue, sub string) string {
	p := backend + "/v1/venues/" + url.PathEscape(venue)
	if sub != "" {
		p += "/" + sub
	}
	return p
}
