package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"c2mn"
)

// MigrationReport is the admin-facing summary of one completed venue
// migration.
type MigrationReport struct {
	Venue         string `json:"venue"`
	From          string `json:"from"`
	To            string `json:"to"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	Status        string `json:"status"`
}

// Migrate moves one venue from its current owner to a target backend
// without losing a single accepted record, sequencing msserve's drain
// and snapshot-transfer primitives:
//
//  1. drain the venue on the source — feeds fail 503 (retryable, no
//     redirect yet: the target cannot accept state-bearing traffic
//     before the restore lands);
//  2. wait for the source's pipeline counters to settle, proving no
//     in-flight feed is still mutating the state being moved;
//  3. snapshot the venue on the source and transfer the file to the
//     target's restore-upload endpoint — the snapshot's integrity and
//     identity guards (checksum, venue/space/model hashes) make a
//     corrupted or misdirected transfer fail loudly here;
//  4. pin the venue to the target, switching all new routing;
//  5. re-drain the source with a redirect so stragglers sent before
//     the pin get a 307 to the new owner;
//  6. unload the source's copy.
//
// Any failure before step 4 rolls back by undraining the source: the
// venue keeps serving where it was, and the migration can simply be
// retried. The target must already have the venue loaded — cold, with
// no fed traffic — because restores refuse to overwrite live state
// (c2mn.ErrSnapshotConflict).
func (rt *Router) Migrate(ctx context.Context, venue, to string) (MigrationReport, error) {
	rt.mu.Lock()
	if rt.migrating[venue] {
		rt.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("%w: %q", c2mn.ErrMigrationConflict, venue)
	}
	rt.migrating[venue] = true
	_, targetKnown := rt.backends[to]
	source, err := rt.ownerLocked(venue)
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.migrating, venue)
		rt.mu.Unlock()
	}()
	if err != nil {
		return MigrationReport{}, err
	}
	if !targetKnown {
		return MigrationReport{}, fmt.Errorf("%w: migration target %q not in the backend table", c2mn.ErrNoBackend, to)
	}
	report := MigrationReport{Venue: venue, From: source, To: to}
	if source == to {
		report.Status = "already there"
		return report, nil
	}

	// 1. Drain: the source keeps answering queries but rejects feeds
	// with a retryable 503, so the state we snapshot stops moving.
	if err := rt.backendJSON(ctx, http.MethodPost, venuePath(source, venue, "drain"), []byte("{}"), nil); err != nil {
		return report, fmt.Errorf("draining %q on %s: %w", venue, source, err)
	}
	rollback := func(cause error) (MigrationReport, error) {
		// Undrain with a background-ish context: the rollback must run
		// even when the caller's ctx caused the failure.
		undrainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := rt.backendJSON(undrainCtx, http.MethodDelete, venuePath(source, venue, "drain"), nil, nil); err != nil {
			rt.cfg.Logf("migration rollback: undraining %q on %s failed: %v", venue, source, err)
		}
		return report, cause
	}

	// 2. Settle: feeds already past the drain check may still be in
	// flight. Two consecutive identical stats reads mean the pipeline
	// has stopped moving.
	if err := rt.waitSettled(ctx, source, venue); err != nil {
		return rollback(fmt.Errorf("waiting for %q to settle on %s: %w", venue, source, err))
	}

	// 3. Snapshot and transfer.
	if err := rt.backendJSON(ctx, http.MethodPost, venuePath(source, venue, "snapshot"), nil, nil); err != nil {
		return rollback(fmt.Errorf("snapshotting %q on %s: %w", venue, source, err))
	}
	snap, err := rt.fetchSnapshot(ctx, source, venue)
	if err != nil {
		return rollback(fmt.Errorf("fetching snapshot of %q from %s: %w", venue, source, err))
	}
	report.SnapshotBytes = int64(len(snap))
	if err := rt.uploadSnapshot(ctx, to, venue, snap); err != nil {
		return rollback(fmt.Errorf("restoring %q on %s: %w", venue, to, err))
	}

	// 4. Cut routing over. From here the migration is forward-only:
	// the target owns the authoritative state.
	rt.mu.Lock()
	rt.pins[venue] = to
	rt.mu.Unlock()

	// 5. Redirect stragglers, 6. retire the source copy. Both are
	// cleanup on a backend that no longer owns the venue: log, don't
	// fail the migration.
	if err := rt.backendJSON(ctx, http.MethodPost, venuePath(source, venue, "drain"),
		[]byte(fmt.Sprintf(`{"redirect_to":%q}`, to)), nil); err != nil {
		rt.cfg.Logf("migration: setting cutover redirect for %q on %s failed: %v", venue, source, err)
	}
	if err := rt.backendJSON(ctx, http.MethodDelete, venuePath(source, venue, ""), nil, nil); err != nil {
		rt.cfg.Logf("migration: unloading %q from %s failed: %v", venue, source, err)
	}

	// Refresh discovery so the hosted-venue maps reflect the move
	// before the next health sweep.
	rt.probe(ctx, source)
	rt.probe(ctx, to)
	report.Status = "migrated"
	rt.cfg.Logf("migrated venue %q: %s -> %s (%d snapshot bytes)", venue, source, to, report.SnapshotBytes)
	return report, nil
}

// waitSettled polls the venue's pipeline counters on the drained
// source until two consecutive reads agree.
func (rt *Router) waitSettled(ctx context.Context, backend, venue string) error {
	const maxPolls = 100
	var prev c2mn.EngineStats
	have := false
	for i := 0; i < maxPolls; i++ {
		var cur c2mn.EngineStats
		if err := rt.backendJSON(ctx, http.MethodGet, venuePath(backend, venue, "stats"), nil, &cur); err != nil {
			return err
		}
		if have && cur == prev {
			return nil
		}
		prev, have = cur, true
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(rt.cfg.SettleDelay):
		}
	}
	return fmt.Errorf("pipeline still moving after %d polls", maxPolls)
}

// fetchSnapshot downloads the venue's snapshot file from the source.
func (rt *Router) fetchSnapshot(ctx context.Context, backend, venue string) ([]byte, error) {
	header := http.Header{}
	if rt.cfg.BackendToken != "" {
		header.Set("Authorization", "Bearer "+rt.cfg.BackendToken)
	}
	target := venuePath(backend, venue, "snapshot/file")
	resp, err := rt.roundTrip(ctx, http.MethodGet, target, header, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
		return nil, backendError(http.MethodGet, target, resp.StatusCode, buf)
	}
	return io.ReadAll(resp.Body)
}

// uploadSnapshot PUTs the snapshot bytes to the target's
// restore-upload endpoint, which applies the full guard stack before
// touching the venue.
func (rt *Router) uploadSnapshot(ctx context.Context, backend, venue string, snap []byte) error {
	header := http.Header{}
	header.Set("Content-Type", "application/octet-stream")
	if rt.cfg.BackendToken != "" {
		header.Set("Authorization", "Bearer "+rt.cfg.BackendToken)
	}
	target := venuePath(backend, venue, "snapshot/file")
	resp, err := rt.roundTrip(ctx, http.MethodPut, target, header, snap)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBody))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return backendError(http.MethodPut, target, resp.StatusCode, buf)
	}
	return nil
}
