package router

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"

	"c2mn"
	"c2mn/internal/query"
)

// The scatter-gather query plane. A venue- or venues-scoped request
// whose owners collapse onto one backend is forwarded verbatim — the
// backend's own merge is already exact, and raw forwarding preserves
// its response bytes (and region names) untouched. Everything wider
// scatters: the router asks each target venue's owner for that one
// venue's UNTRUNCATED counts (k = query.AllCounts — top-k partials
// cannot merge exactly; a region ranked k+1 everywhere can be the
// global winner) and merges them with the same internal/query helpers
// msserve's registry uses, so a fleet answer through the router is
// byte-identical to a single process holding every venue.

// scatterPartial is one cached single-venue partial: the untruncated
// counts a backend returned for (backend, venue, sub-query), labeled
// with the ETag the backend minted for it. Revalidation sends the
// ETag back as If-None-Match; a 304 means the venue's store
// generation has not moved, so the cached counts are still exact.
type scatterPartial struct {
	etag string
	res  c2mn.QueryResult
}

// scatterCacheEntries bounds the router's partial cache.
const scatterCacheEntries = 1024

// queryRequest mirrors msserve's POST /v1/query body: the library
// Query plus cursor pagination.
type queryRequest struct {
	c2mn.Query
	PageSize int    `json:"page_size,omitempty"`
	Cursor   string `json:"cursor,omitempty"`
}

type queryResponse struct {
	c2mn.QueryResult
	Offset     int    `json:"offset,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// queryCursor is the same stateless cursor msserve encodes, so a
// cursor minted by either tier resumes through the other.
type queryCursor struct {
	Query    c2mn.Query `json:"q"`
	PageSize int        `json:"page_size"`
	Offset   int        `json:"offset"`
}

func encodeCursor(c queryCursor) (string, error) {
	buf, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(buf), nil
}

func decodeCursor(s string) (queryCursor, error) {
	var c queryCursor
	buf, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if err := json.Unmarshal(buf, &c); err != nil {
		return c, fmt.Errorf("bad cursor: %w", err)
	}
	if c.PageSize <= 0 || c.Offset < 0 {
		return c, errors.New("bad cursor: invalid page bounds")
	}
	return c, nil
}

// normalizeQuery validates q and fills defaults exactly as the
// library's Query.normalized does, so the router routes on the same
// effective scope/venues/k the backends would compute. All failures
// wrap c2mn.ErrInvalidQuery.
func normalizeQuery(q c2mn.Query) (c2mn.Query, error) {
	invalid := func(detail string) error {
		return fmt.Errorf("%w: %s", c2mn.ErrInvalidQuery, detail)
	}
	switch q.Kind {
	case c2mn.QueryPopularRegions, c2mn.QueryFrequentPairs:
	default:
		return q, invalid(fmt.Sprintf("kind %q (want %q or %q)", q.Kind, c2mn.QueryPopularRegions, c2mn.QueryFrequentPairs))
	}
	if q.Scope == "" {
		switch len(q.Venues) {
		case 0:
			q.Scope = c2mn.ScopeFleet
		case 1:
			q.Scope = c2mn.ScopeVenue
		default:
			q.Scope = c2mn.ScopeVenues
		}
	}
	switch q.Scope {
	case c2mn.ScopeFleet:
		if len(q.Venues) != 0 {
			return q, invalid(`scope "fleet" does not take a venue list`)
		}
	case c2mn.ScopeVenue:
		if len(q.Venues) != 1 {
			return q, invalid(fmt.Sprintf(`scope "venue" wants exactly one venue, got %d`, len(q.Venues)))
		}
	case c2mn.ScopeVenues:
		if len(q.Venues) == 0 {
			return q, invalid(`scope "venues" wants at least one venue`)
		}
	default:
		return q, invalid(fmt.Sprintf("scope %q", q.Scope))
	}
	if len(q.Venues) > 0 {
		dedup := make([]string, 0, len(q.Venues))
		seen := make(map[string]bool, len(q.Venues))
		for _, id := range q.Venues {
			if id == "" {
				return q, invalid("empty venue ID")
			}
			if !seen[id] {
				seen[id] = true
				dedup = append(dedup, id)
			}
		}
		q.Venues = dedup
	}
	if q.K < 0 {
		return q, invalid(fmt.Sprintf("negative k %d", q.K))
	}
	if q.K == 0 {
		q.K = c2mn.DefaultQueryK
	}
	if q.Window != nil {
		if math.IsNaN(q.Window.Start) || math.IsNaN(q.Window.End) {
			return q, invalid("NaN window bound")
		}
		w := *q.Window
		q.Window = &w
	}
	return q, nil
}

// handleQuery serves the router's POST /v1/query: single-backend
// scopes forward raw, wider scopes scatter-gather with the router
// running the same cursor pagination msserve does.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.writeBodyError(w, r, err)
		return
	}
	var req queryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PageSize < 0 {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("negative page_size %d", req.PageSize))
		return
	}
	q, pageSize, offset := req.Query, req.PageSize, 0
	if req.Cursor != "" {
		if !reflect.DeepEqual(req.Query, c2mn.Query{}) {
			rt.writeError(w, r, http.StatusBadRequest, errors.New("cursor and query fields are mutually exclusive"))
			return
		}
		cur, err := decodeCursor(req.Cursor)
		if err != nil {
			rt.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		q, offset = cur.Query, cur.Offset
		pageSize = cur.PageSize
		if req.PageSize > 0 {
			pageSize = req.PageSize
		}
	}
	nq, err := normalizeQuery(q)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if nq.Scope != c2mn.ScopeFleet {
		if backend, single := rt.singleOwner(nq.Venues); single {
			rt.forward(w, r, backend, body)
			return
		}
	}
	res, err := rt.scatter(r.Context(), nq)
	if err != nil {
		rt.writeScatterError(w, r, err)
		return
	}
	resp := queryResponse{QueryResult: res}
	if pageSize > 0 {
		resp.Offset = offset
		if next := paginate(&resp.QueryResult, offset, pageSize); next >= 0 {
			cursor, err := encodeCursor(queryCursor{Query: q, PageSize: pageSize, Offset: next})
			if err != nil {
				rt.writeError(w, r, http.StatusInternalServerError, err)
				return
			}
			resp.NextCursor = cursor
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// singleOwner reports whether every venue in the list resolves to one
// backend, returning it. Resolution failures (no ready backend) fall
// through to the scatter path, which phrases the error.
func (rt *Router) singleOwner(venues []string) (string, bool) {
	backend := ""
	for _, v := range venues {
		b, err := rt.owner(v)
		if err != nil {
			return "", false
		}
		if backend == "" {
			backend = b
		} else if backend != b {
			return "", false
		}
	}
	return backend, backend != ""
}

// writeScatterError maps scatter failures onto statuses, mirroring
// msserve's writeQueryError.
func (rt *Router) writeScatterError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, c2mn.ErrInvalidQuery):
		rt.writeError(w, r, http.StatusBadRequest, err)
	case errors.Is(err, c2mn.ErrUnknownVenue):
		rt.writeError(w, r, http.StatusNotFound, err)
	case errors.Is(err, c2mn.ErrNoBackend):
		rt.writeError(w, r, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		rt.writeError(w, r, http.StatusServiceUnavailable, err)
	default:
		rt.writeError(w, r, http.StatusBadGateway, err)
	}
}

// paginate is msserve's pagination verbatim: slice the ranked list to
// [offset, offset+size) without ever computing the raw sum (a forged
// cursor can put offset near MaxInt), returning the next offset or -1.
func paginate(res *c2mn.QueryResult, offset, size int) int {
	if res.Kind == c2mn.QueryFrequentPairs {
		n := len(res.Pairs)
		lo := min(offset, n)
		hi := lo + min(size, n-lo)
		res.Pairs = res.Pairs[lo:hi]
		if hi < n {
			return hi
		}
		return -1
	}
	n := len(res.Regions)
	lo := min(offset, n)
	hi := lo + min(size, n-lo)
	res.Regions = res.Regions[lo:hi]
	if hi < n {
		return hi
	}
	return -1
}

// scatter executes a normalized multi-venue query across the fleet:
// one untruncated single-venue partial per target venue, fetched from
// the venue's owner in parallel, merged exactly. Fleet scope silently
// skips venues that vanished since discovery (matching the registry's
// own fleet semantics); an explicitly named venue that no backend
// knows fails the whole query with ErrUnknownVenue.
func (rt *Router) scatter(ctx context.Context, nq c2mn.Query) (c2mn.QueryResult, error) {
	fleet := nq.Scope == c2mn.ScopeFleet
	ids := nq.Venues
	if fleet {
		ids = rt.knownVenues() // sorted: fleet Scanned is sorted
	}
	type partial struct {
		res     c2mn.QueryResult
		skipped bool
		err     error
	}
	parts := make([]partial, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(p *partial, id string) {
			defer wg.Done()
			backend, err := rt.owner(id)
			if err != nil {
				p.err = err
				return
			}
			sub := c2mn.Query{
				Kind: nq.Kind, Scope: c2mn.ScopeVenue, Venues: []string{id},
				Regions: nq.Regions, Window: nq.Window, K: query.AllCounts,
			}
			body, err := json.Marshal(queryRequest{Query: sub})
			if err != nil {
				p.err = err
				return
			}
			// One cache entry per (backend, venue, sub-query): the
			// canonical body pins venue/kind/regions/window, and the
			// backend prefix keeps a migrated venue from validating
			// against an ETag minted by its previous owner.
			key := backend + "\x00" + string(body)
			rt.partialMu.Lock()
			cached, haveCached := rt.partials.Get(key)
			rt.partialMu.Unlock()
			inm := ""
			if haveCached {
				inm = cached.etag
				rt.partialRevals.Add(1)
			}
			var resp queryResponse
			etag, notModified, err := rt.backendJSONCond(ctx, http.MethodPost, backend+"/v1/query", body, inm, &resp)
			if err != nil {
				if fleet && errors.Is(err, c2mn.ErrUnknownVenue) {
					p.skipped = true // unloaded between discovery and scan
					return
				}
				p.err = err
				return
			}
			if notModified {
				rt.partialHits.Add(1)
				p.res = cached.res
				return
			}
			rt.partialMisses.Add(1)
			p.res = resp.QueryResult
			if etag != "" {
				rt.partialMu.Lock()
				rt.partials.Put(key, scatterPartial{etag: etag, res: resp.QueryResult})
				rt.partialMu.Unlock()
			}
		}(&parts[i], id)
	}
	wg.Wait()

	res := c2mn.QueryResult{Kind: nq.Kind, Scope: nq.Scope, K: nq.K, Scanned: make([]string, 0, len(ids))}
	regionLists := make([][]c2mn.RegionCount, 0, len(ids))
	pairLists := make([][]c2mn.PairCount, 0, len(ids))
	for i := range parts {
		p := &parts[i]
		if p.err != nil {
			return c2mn.QueryResult{}, fmt.Errorf("query venue %q: %w", ids[i], p.err)
		}
		if p.skipped {
			continue
		}
		res.Scanned = append(res.Scanned, ids[i])
		if nq.PerVenue {
			res.PerVenue = append(res.PerVenue, c2mn.VenueCounts{
				Venue:   ids[i],
				Regions: query.TruncateRegionCounts(p.res.Regions, nq.K),
				Pairs:   query.TruncatePairCounts(p.res.Pairs, nq.K),
			})
		}
		regionLists = append(regionLists, p.res.Regions)
		pairLists = append(pairLists, p.res.Pairs)
	}
	switch nq.Kind {
	case c2mn.QueryFrequentPairs:
		res.Pairs = query.TruncatePairCounts(query.MergePairCounts(pairLists...), nq.K)
		if res.Pairs == nil {
			res.Pairs = []c2mn.PairCount{}
		}
	default:
		res.Regions = query.TruncateRegionCounts(query.MergeRegionCounts(regionLists...), nq.K)
		if res.Regions == nil {
			res.Regions = []c2mn.RegionCount{}
		}
	}
	return res, nil
}

// handleTopKSugar serves the bare GET query sugars. Requests that
// resolve to one backend — explicit ?venue=, or a sole-venue fleet —
// forward raw so the backend's region-name resolution applies; the
// cross-venue forms (?venues=a,b spanning backends, ?scope=fleet)
// scatter and render the nameless rows msserve itself produces for
// multi-venue scans.
func (rt *Router) handleTopKSugar(w http.ResponseWriter, r *http.Request) {
	kind := c2mn.QueryPopularRegions
	if strings.HasSuffix(r.URL.Path, "/frequent-pairs") {
		kind = c2mn.QueryFrequentPairs
	}
	vals := r.URL.Query()
	scope, venues := c2mn.QueryScope(""), []string(nil)
	switch {
	case vals.Get("venue") != "":
		scope, venues = c2mn.ScopeVenue, []string{vals.Get("venue")}
	case vals.Get("venues") != "":
		scope, venues = c2mn.ScopeVenues, strings.Split(vals.Get("venues"), ",")
	case vals.Get("scope") == "fleet":
		scope = c2mn.ScopeFleet
	case vals.Get("scope") != "":
		rt.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("bad scope %q (only \"fleet\" may be given without venues)", vals.Get("scope")))
		return
	default:
		known := rt.knownVenues()
		if len(known) != 1 {
			rt.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("%d venue(s) in the fleet: pass ?venue=, ?venues=a,b or ?scope=fleet", len(known)))
			return
		}
		scope, venues = c2mn.ScopeVenue, []string{known[0]}
	}
	if scope != c2mn.ScopeFleet {
		if backend, single := rt.singleOwner(venues); single {
			rt.forward(w, r, backend, nil)
			return
		}
	}
	regions, win, k, err := sugarParams(r)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	nq, err := normalizeQuery(c2mn.Query{Kind: kind, Scope: scope, Venues: venues, Regions: regions, Window: win, K: k})
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	res, err := rt.scatter(r.Context(), nq)
	if err != nil {
		rt.writeScatterError(w, r, err)
		return
	}
	// Multi-venue scans have no single naming venue, so the rows carry
	// no region names — exactly like msserve's own cross-venue sugar.
	if kind == c2mn.QueryFrequentPairs {
		type pairRow struct {
			A     int `json:"a"`
			B     int `json:"b"`
			Count int `json:"count"`
		}
		out := make([]pairRow, len(res.Pairs))
		for i, pc := range res.Pairs {
			out[i] = pairRow{A: int(pc.A), B: int(pc.B), Count: pc.Count}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	type regionRow struct {
		Region int `json:"region"`
		Count  int `json:"count"`
	}
	out := make([]regionRow, len(res.Regions))
	for i, rc := range res.Regions {
		out[i] = regionRow{Region: int(rc.Region), Count: rc.Count}
	}
	writeJSON(w, http.StatusOK, out)
}

// sugarParams parses the query sugars' k/start/end/regions exactly as
// msserve does, so a scattered sugar rejects what a backend would.
func sugarParams(r *http.Request) ([]c2mn.RegionID, *c2mn.Window, int, error) {
	vals := r.URL.Query()
	k := 0
	if v := vals.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, nil, 0, fmt.Errorf("bad k %q", v)
		}
		k = n
	}
	var win *c2mn.Window
	if vals.Get("start") != "" || vals.Get("end") != "" {
		win = &c2mn.Window{Start: -math.MaxFloat64, End: math.MaxFloat64}
		if v := vals.Get("start"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad start %q", v)
			}
			win.Start = f
		}
		if v := vals.Get("end"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(f) {
				return nil, nil, 0, fmt.Errorf("bad end %q", v)
			}
			win.End = f
		}
	}
	var q []c2mn.RegionID
	if v := vals.Get("regions"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, 0, fmt.Errorf("bad region %q", part)
			}
			q = append(q, c2mn.RegionID(n))
		}
	}
	return q, win, k, nil
}

// handleStats aggregates GET /v1/stats across the fleet: each known
// venue's counters come from its owning backend — never from a cold
// dual-loaded copy — and sum into the same statsResponse shape (and
// bytes: JSON object keys sort) a single msserve holding every venue
// would emit.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	venues := rt.knownVenues()
	type result struct {
		stats   c2mn.EngineStats
		skipped bool
		err     error
	}
	results := make([]result, len(venues))
	var wg sync.WaitGroup
	for i, id := range venues {
		wg.Add(1)
		go func(res *result, id string) {
			defer wg.Done()
			backend, err := rt.owner(id)
			if err != nil {
				res.err = err
				return
			}
			err = rt.backendJSON(r.Context(), http.MethodGet, venuePath(backend, id, "stats"), nil, &res.stats)
			if errors.Is(err, c2mn.ErrUnknownVenue) {
				res.skipped = true // unloaded between discovery and scan
				return
			}
			res.err = err
		}(&results[i], id)
	}
	wg.Wait()
	resp := struct {
		Venues map[string]c2mn.EngineStats `json:"venues"`
		Totals c2mn.EngineStats            `json:"totals"`
	}{Venues: map[string]c2mn.EngineStats{}}
	for i := range results {
		res := &results[i]
		if res.err != nil {
			rt.writeScatterError(w, r, fmt.Errorf("stats for venue %q: %w", venues[i], res.err))
			return
		}
		if res.skipped {
			continue
		}
		resp.Venues[venues[i]] = res.stats
		resp.Totals.FedRecords += res.stats.FedRecords
		resp.Totals.PendingObjects += res.stats.PendingObjects
		resp.Totals.PendingRecords += res.stats.PendingRecords
		resp.Totals.EmittedSequences += res.stats.EmittedSequences
		resp.Totals.StoredSequences += res.stats.StoredSequences
		resp.Totals.StoredSemantics += res.stats.StoredSemantics
		resp.Totals.QueryCacheHits += res.stats.QueryCacheHits
		resp.Totals.QueryCacheMisses += res.stats.QueryCacheMisses
		resp.Totals.QueryCacheRevalidations += res.stats.QueryCacheRevalidations
		resp.Totals.StoreNotifications += res.stats.StoreNotifications
	}
	noStore(w)
	writeJSON(w, http.StatusOK, resp)
}

// handleListVenues merges GET /v1/venues across the ready backends.
// Each venue's row comes from its owning backend only, so a venue
// mid-migration (briefly loaded on two backends) lists once, with the
// owner's snapshot-freshness columns.
func (rt *Router) handleListVenues(w http.ResponseWriter, r *http.Request) {
	type row struct {
		venue string
		raw   json.RawMessage
	}
	backends := rt.readyBackends()
	lists := make([][]row, len(backends))
	errs := make([]error, len(backends))
	var wg sync.WaitGroup
	for i, backend := range backends {
		wg.Add(1)
		go func(i int, backend string) {
			defer wg.Done()
			var resp struct {
				Venues []json.RawMessage `json:"venues"`
			}
			if err := rt.backendJSON(r.Context(), http.MethodGet, backend+"/v1/venues", nil, &resp); err != nil {
				errs[i] = err
				return
			}
			for _, raw := range resp.Venues {
				var id struct {
					Venue string `json:"venue"`
				}
				if err := json.Unmarshal(raw, &id); err != nil || id.Venue == "" {
					continue
				}
				if owner, err := rt.owner(id.Venue); err == nil && owner == backend {
					lists[i] = append(lists[i], row{venue: id.Venue, raw: raw})
				}
			}
		}(i, backend)
	}
	wg.Wait()
	merged := make([]row, 0)
	for i := range lists {
		if errs[i] != nil {
			rt.writeScatterError(w, r, fmt.Errorf("listing venues on %s: %w", backends[i], errs[i]))
			return
		}
		merged = append(merged, lists[i]...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].venue < merged[j].venue })
	out := make([]json.RawMessage, len(merged))
	for i, rw := range merged {
		out[i] = rw.raw
	}
	noStore(w)
	writeJSON(w, http.StatusOK, map[string]any{"venues": out})
}

// handleFlush fans POST /v1/flush out venue-by-venue to each owner —
// flushing every venue exactly once even when dual-loaded — and sums
// the per-venue flush counters. A ?venue= flush forwards raw.
func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("venue") != "" {
		rt.forwardToOwner(w, r, r.URL.Query().Get("venue"))
		return
	}
	venues := rt.knownVenues()
	type flushCounts struct {
		Venues           int   `json:"venues"`
		PendingRecords   int   `json:"pending_records"`
		EmittedSequences int64 `json:"emitted_sequences"`
	}
	results := make([]flushCounts, len(venues))
	errs := make([]error, len(venues))
	var wg sync.WaitGroup
	for i, id := range venues {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			backend, err := rt.owner(id)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = rt.backendJSON(r.Context(), http.MethodPost, venuePath(backend, id, "flush"), nil, &results[i])
		}(i, id)
	}
	wg.Wait()
	total := flushCounts{}
	var failed []error
	for i := range venues {
		if errs[i] != nil {
			if errors.Is(errs[i], c2mn.ErrUnknownVenue) {
				continue // unloaded between discovery and flush
			}
			failed = append(failed, fmt.Errorf("venue %q: %w", venues[i], errs[i]))
			continue
		}
		total.Venues += results[i].Venues
		total.PendingRecords += results[i].PendingRecords
		total.EmittedSequences += results[i].EmittedSequences
	}
	if len(failed) > 0 {
		rt.writeError(w, r, http.StatusBadGateway, errors.Join(failed...))
		return
	}
	writeJSON(w, http.StatusOK, total)
}
