// Package router implements msrouter's stateless routing tier: a
// backend table over N msserve processes, venue→backend placement via
// rendezvous (highest-random-weight) hashing with explicit pin
// overrides, /v1 proxying with bounded retries, scatter-gather
// execution of fleet-scoped queries with exact cross-backend merging,
// and router-coordinated live venue migration built from msserve's
// drain + snapshot-transfer primitives.
//
// The router holds no venue state. Everything it knows — backend
// health, which backend hosts which venue — is re-learned within one
// health-check round, so routers restart instantly, scale
// horizontally behind a TCP balancer, and never need failover of
// their own.
package router

import (
	"hash/fnv"
	"io"
)

// hrwScore ranks a (backend, venue) pair for rendezvous hashing:
// 64-bit FNV-1a over the two strings with a separator byte (so
// ("ab","c") and ("a","bc") score independently), then an fmix64
// finalizer. FNV is stable across processes, platforms and Go
// releases — unlike hash/maphash, whose per-process seed would
// reshuffle every venue on a router restart — but its last-byte
// avalanche is poor: without finalization the backend prefix
// dominates the high bits and one backend out-scores the rest for
// every venue. fmix64 (MurmurHash3's finalizer) diffuses every input
// bit across the whole word, with fixed constants, so determinism is
// preserved.
func hrwScore(backend, venue string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, backend)
	h.Write([]byte{0})
	io.WriteString(h, venue)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// RendezvousOwner returns the backend owning venue under HRW hashing:
// the backend whose (backend, venue) score is highest, ties broken by
// the lexicographically smaller backend name. The result depends only
// on the *set* of backends — not their order, and not on any state —
// which gives rendezvous hashing its two routing properties: every
// router instance (and every restart) computes the same placement,
// and removing one backend remaps only the venues that backend owned,
// because every other venue's maximum is untouched.
//
// An empty backend list returns "".
func RendezvousOwner(venue string, backends []string) string {
	var best string
	var bestScore uint64
	for _, b := range backends {
		s := hrwScore(b, venue)
		if best == "" || s > bestScore || (s == bestScore && b < best) {
			best, bestScore = b, s
		}
	}
	return best
}
