package router

// Tests for the routing tier's continuous-query stream: exact merge of
// per-venue upstream subscriptions, Last-Event-ID resume, and the
// self-healing resubscription path across a venue migration.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"c2mn"
	"c2mn/internal/notify"
)

// sseFake emulates the slice of msserve the router's watch plane
// touches: readiness, venue discovery, and the venue-scoped SSE watch
// endpoint driven by a notify.Hub, generation bumps included.
type sseFake struct {
	srv *httptest.Server
	hub *notify.Hub

	mu     sync.Mutex
	venues map[string]*sseFakeVenue
	// heartbeat, when positive, emits comment frames on open streams at
	// that cadence — needed by tests where a stream must look alive
	// while its data never moves.
	heartbeat time.Duration
	// silentStreams makes the next N watch streams wedge after their
	// snapshot: no heartbeats, no deltas, the connection just stays
	// open — the shape of a stopped process or half-open peer.
	silentStreams int
	// badIDStreams makes the next N watch streams emit their snapshot
	// with an unparseable event id and then wedge — a protocol
	// violation only a resubscribing relay can recover from.
	badIDStreams int
}

type sseFakeVenue struct {
	gen     uint64
	regions []c2mn.RegionCount // untruncated, canonical order
}

func newSSEFake(t *testing.T) *sseFake {
	f := &sseFake{hub: notify.NewHub(), venues: map[string]*sseFakeVenue{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/venues", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		rows := make([]map[string]any, 0, len(f.venues))
		for id := range f.venues {
			rows = append(rows, map[string]any{"venue": id})
		}
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"venues": rows})
	})
	mux.HandleFunc("GET /v1/venues/{venue}/watch", f.handleWatch)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// set installs (or replaces) a venue's untruncated answer at the given
// generation and signals the hub, like a store write would.
func (f *sseFake) set(venue string, gen uint64, regions []c2mn.RegionCount) {
	f.mu.Lock()
	f.venues[venue] = &sseFakeVenue{gen: gen, regions: regions}
	f.mu.Unlock()
	f.hub.Publish(venue, gen)
}

// remove unloads a venue; open watch streams say goodbye.
func (f *sseFake) remove(venue string) {
	f.mu.Lock()
	delete(f.venues, venue)
	f.mu.Unlock()
	f.hub.Invalidate(venue)
}

func (f *sseFake) state(venue string) (uint64, []c2mn.RegionCount, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.venues[venue]
	if !ok {
		return 0, nil, false
	}
	return v.gen, append([]c2mn.RegionCount(nil), v.regions...), true
}

func (f *sseFake) handleWatch(w http.ResponseWriter, r *http.Request) {
	venue := r.PathValue("venue")
	sub := f.hub.Subscribe([]string{venue}, 0)
	defer sub.Close()
	gen, regions, ok := f.state(venue)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]wireError{"error": {
			Code: "unknown_venue", Message: "unknown venue " + venue,
		}})
		return
	}
	f.mu.Lock()
	silent := f.silentStreams > 0
	if silent {
		f.silentStreams--
	}
	badID := f.badIDStreams > 0
	if badID {
		f.badIDStreams--
	}
	hb := f.heartbeat
	f.mu.Unlock()
	sw, err := notify.NewSSEWriter(w, 0)
	if err != nil {
		return
	}
	if badID {
		sw.Event("snapshot", "not a composite id", notify.SnapshotData{
			Kind: "popular-regions", K: len(regions), Scanned: []string{venue}, Regions: regions,
		})
		<-r.Context().Done()
		return
	}
	answer := notify.Answer{Kind: "popular-regions", Regions: regions}
	id := notify.VenueEventID(venue, gen)
	if last := r.Header.Get("Last-Event-ID"); last != id {
		if sw.Event("snapshot", id, notify.SnapshotData{
			Kind: "popular-regions", K: len(regions), Scanned: []string{venue}, Regions: regions,
		}) != nil {
			return
		}
	}
	if silent {
		<-r.Context().Done()
		return
	}
	var hbCh <-chan time.Time
	if hb > 0 {
		t := time.NewTicker(hb)
		defer t.Stop()
		hbCh = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hbCh:
			if sw.Comment("hb") != nil {
				return
			}
		case <-sub.Ready():
			sub.Take()
			gen, regions, ok := f.state(venue)
			if !ok {
				sw.Event("goodbye", id, notify.GoodbyeData{Reason: notify.ReasonUnknownVenue})
				return
			}
			nid := notify.VenueEventID(venue, gen)
			if nid == id {
				continue
			}
			next := notify.Answer{Kind: "popular-regions", Regions: regions}
			d := notify.Diff(answer, next)
			if d.Empty() {
				continue
			}
			if sw.Event("delta", nid, d) != nil {
				return
			}
			answer, id = next, nid
		}
	}
}

type routerSSEEvent struct {
	ev  notify.Event
	err error
}

type routerSSEConn struct {
	cancel context.CancelFunc
	events chan routerSSEEvent
}

func dialRouterWatch(t *testing.T, url, lastID string) *routerSSEConn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("router watch status = %s", resp.Status)
	}
	c := &routerSSEConn{cancel: cancel, events: make(chan routerSSEEvent, 64)}
	go func() {
		defer resp.Body.Close()
		er := notify.NewEventReader(resp.Body)
		for {
			ev, err := er.Next()
			c.events <- routerSSEEvent{ev, err}
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(c.cancel)
	return c
}

func (c *routerSSEConn) nextData(t *testing.T, timeout time.Duration) (notify.Event, bool) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case e := <-c.events:
			if e.err != nil {
				return notify.Event{}, false
			}
			if e.ev.IsComment() {
				continue
			}
			return e.ev, true
		case <-deadline:
			return notify.Event{}, false
		}
	}
}

func regionsJSON(t *testing.T, rcs []c2mn.RegionCount) string {
	t.Helper()
	buf, err := json.Marshal(rcs)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func foldRouterEvent(t *testing.T, answer notify.Answer, ev notify.Event) notify.Answer {
	t.Helper()
	switch ev.Name {
	case "snapshot", "resync":
		var snap notify.SnapshotData
		if err := json.Unmarshal(ev.Data, &snap); err != nil {
			t.Fatalf("bad %s payload %s: %v", ev.Name, ev.Data, err)
		}
		return notify.Answer{Kind: snap.Kind, Regions: snap.Regions, Pairs: snap.Pairs}
	case "delta":
		var d notify.DeltaData
		if err := json.Unmarshal(ev.Data, &d); err != nil {
			t.Fatalf("bad delta payload %s: %v", ev.Data, err)
		}
		return notify.Apply(answer, d)
	}
	t.Fatalf("unexpected event %q", ev.Name)
	return answer
}

func TestRouterWatchMergesAcrossBackends(t *testing.T) {
	a, b := newSSEFake(t), newSSEFake(t)
	a.set("north", 1, []c2mn.RegionCount{{Region: 1, Count: 30}, {Region: 2, Count: 10}})
	b.set("south", 1, []c2mn.RegionCount{{Region: 2, Count: 25}, {Region: 3, Count: 5}})

	cfg := Config{Backends: []string{a.srv.URL, b.srv.URL}, WatchHeartbeat: 50 * time.Millisecond}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	c := dialRouterWatch(t, ts.URL+"/v1/watch?venues=north,south&k=2", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	answer := foldRouterEvent(t, notify.Answer{}, ev)
	// Exact merge: region 2 sums 10+25=35 and leads, region 1 at 30;
	// truncation to k=2 happens AFTER the merge.
	want := []c2mn.RegionCount{{Region: 2, Count: 35}, {Region: 1, Count: 30}}
	if regionsJSON(t, answer.Regions) != regionsJSON(t, want) {
		t.Fatalf("merged snapshot = %s, want %s", regionsJSON(t, answer.Regions), regionsJSON(t, want))
	}
	wantID := notify.EncodeEventID(map[string]uint64{"north": 1, "south": 1})
	if ev.ID != wantID {
		t.Fatalf("snapshot id = %q, want %q", ev.ID, wantID)
	}

	// A write on one backend pushes a delta that folds to the new merge.
	b.set("south", 2, []c2mn.RegionCount{{Region: 2, Count: 25}, {Region: 3, Count: 40}})
	ev, ok = c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "delta" {
		t.Fatalf("after write: %+v ok=%v", ev, ok)
	}
	answer = foldRouterEvent(t, answer, ev)
	want = []c2mn.RegionCount{{Region: 3, Count: 40}, {Region: 2, Count: 35}}
	if regionsJSON(t, answer.Regions) != regionsJSON(t, want) {
		t.Fatalf("folded = %s, want %s", regionsJSON(t, answer.Regions), regionsJSON(t, want))
	}
	wantID = notify.EncodeEventID(map[string]uint64{"north": 1, "south": 2})
	if ev.ID != wantID {
		t.Fatalf("delta id = %q, want %q", ev.ID, wantID)
	}

	// Resume with the current composite, then write: whether the write
	// lands before or after the router finishes re-assembling its folds
	// decides between a skipped snapshot + delta and a fresh snapshot —
	// both are contract-valid; what must hold is the folded answer and
	// its id.
	c2c := dialRouterWatch(t, ts.URL+"/v1/watch?venues=north,south&k=2", ev.ID)
	a.set("north", 2, []c2mn.RegionCount{{Region: 1, Count: 60}})
	want = []c2mn.RegionCount{{Region: 1, Count: 60}, {Region: 3, Count: 40}}
	wantID = notify.EncodeEventID(map[string]uint64{"north": 2, "south": 2})
	resumed := answer
	deadline := time.Now().Add(5 * time.Second)
	for regionsJSON(t, resumed.Regions) != regionsJSON(t, want) {
		ev2, ok := c2c.nextData(t, time.Until(deadline))
		if !ok {
			t.Fatalf("resumed stream never converged; folded %s", regionsJSON(t, resumed.Regions))
		}
		resumed = foldRouterEvent(t, resumed, ev2)
		if regionsJSON(t, resumed.Regions) == regionsJSON(t, want) && ev2.ID != wantID {
			t.Fatalf("converged with id %q, want %q", ev2.ID, wantID)
		}
	}
}

func TestRouterWatchSurvivesMigration(t *testing.T) {
	a, b := newSSEFake(t), newSSEFake(t)
	a.set("m", 1, []c2mn.RegionCount{{Region: 1, Count: 10}})

	cfg := Config{Backends: []string{a.srv.URL, b.srv.URL}, WatchHeartbeat: 50 * time.Millisecond}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	c := dialRouterWatch(t, ts.URL+"/v1/venues/m/watch?k=5", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	answer := foldRouterEvent(t, notify.Answer{}, ev)

	// Migrate: restore on the target with the generation jump a real
	// snapshot restore performs, pin ownership there, then retire the
	// source copy (whose stream says goodbye unknown_venue).
	const genJump = uint64(1) << 32
	b.set("m", 1+genJump, []c2mn.RegionCount{{Region: 1, Count: 10}, {Region: 2, Count: 4}})
	pin, err := json.Marshal(map[string]string{"venue": "m", "backend": b.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/admin/pins", "application/json", strings.NewReader(string(pin)))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pin: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	rt.CheckNow(context.Background())
	a.remove("m")

	// The relay re-resolves ownership and resumes from the target; the
	// jumped generation forces a fresh upstream snapshot, which reaches
	// the client as the delta (or resync) that makes its fold exact.
	deadline := time.Now().Add(10 * time.Second)
	want := []c2mn.RegionCount{{Region: 1, Count: 10}, {Region: 2, Count: 4}}
	wantID := notify.EncodeEventID(map[string]uint64{"m": 1 + genJump})
	for {
		if regionsJSON(t, answer.Regions) == regionsJSON(t, want) {
			break
		}
		ev, ok := c.nextData(t, time.Until(deadline))
		if !ok {
			t.Fatalf("stream ended before converging; folded %s", regionsJSON(t, answer.Regions))
		}
		if ev.Name == "goodbye" {
			t.Fatalf("client stream got goodbye during migration: %s", ev.Data)
		}
		answer = foldRouterEvent(t, answer, ev)
		if regionsJSON(t, answer.Regions) == regionsJSON(t, want) && ev.ID != wantID {
			t.Fatalf("converged with id %q, want %q", ev.ID, wantID)
		}
	}
}

// A backend that wedges — stops producing frames without closing the
// connection (SIGSTOP, half-open TCP after a crash) — must not park
// the relay forever: the idle watchdog abandons the silent stream and
// resubscribes, and the reconnected stream catches the write the
// wedged one swallowed.
func TestRouterWatchAbandonsSilentUpstream(t *testing.T) {
	a := newSSEFake(t)
	a.set("s", 1, []c2mn.RegionCount{{Region: 1, Count: 5}})

	rt, err := New(Config{
		Backends:         []string{a.srv.URL},
		WatchHeartbeat:   50 * time.Millisecond,
		WatchIdleTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	a.mu.Lock()
	a.silentStreams = 1
	a.mu.Unlock()
	c := dialRouterWatch(t, ts.URL+"/v1/venues/s/watch?k=5", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	answer := foldRouterEvent(t, notify.Answer{}, ev)

	// The wedged stream never sees this write; only a relay that gave
	// up on it and resubscribed can deliver it.
	a.set("s", 2, []c2mn.RegionCount{{Region: 1, Count: 5}, {Region: 2, Count: 9}})
	want := []c2mn.RegionCount{{Region: 2, Count: 9}, {Region: 1, Count: 5}}
	wantID := notify.EncodeEventID(map[string]uint64{"s": 2})
	deadline := time.Now().Add(10 * time.Second)
	for regionsJSON(t, answer.Regions) != regionsJSON(t, want) {
		ev, ok := c.nextData(t, time.Until(deadline))
		if !ok {
			t.Fatalf("stream never recovered from the silent upstream; folded %s", regionsJSON(t, answer.Regions))
		}
		answer = foldRouterEvent(t, answer, ev)
		if regionsJSON(t, answer.Regions) == regionsJSON(t, want) && ev.ID != wantID {
			t.Fatalf("converged with id %q, want %q", ev.ID, wantID)
		}
	}
}

// A relay connected to a backend that lost ownership but still hosts
// the venue — and keeps heartbeating its frozen copy — must notice the
// owner change and resubscribe. Stream end never comes here; only the
// watchdog's ownership recheck can unpark it.
func TestRouterWatchRepinUnparksStream(t *testing.T) {
	a, b := newSSEFake(t), newSSEFake(t)
	a.set("p", 1, []c2mn.RegionCount{{Region: 1, Count: 7}})
	b.set("p", 1, []c2mn.RegionCount{{Region: 1, Count: 7}})
	a.mu.Lock()
	a.heartbeat = 20 * time.Millisecond // the stale stream stays visibly alive
	a.mu.Unlock()

	rt, err := New(Config{
		Backends:         []string{a.srv.URL, b.srv.URL},
		WatchHeartbeat:   50 * time.Millisecond,
		WatchIdleTimeout: time.Second, // heartbeats outpace it: idle can't fire
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)
	pinVenue(t, ts.URL, "p", a.srv.URL)

	c := dialRouterWatch(t, ts.URL+"/v1/venues/p/watch?k=5", "")
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	answer := foldRouterEvent(t, notify.Answer{}, ev)

	// Move ownership to b without touching a: a's copy stays loaded and
	// heartbeating, exactly the shape that parked relays before the
	// ownership recheck existed.
	b.set("p", 2, []c2mn.RegionCount{{Region: 1, Count: 7}, {Region: 3, Count: 2}})
	pinVenue(t, ts.URL, "p", b.srv.URL)
	rt.CheckNow(context.Background())

	want := []c2mn.RegionCount{{Region: 1, Count: 7}, {Region: 3, Count: 2}}
	wantID := notify.EncodeEventID(map[string]uint64{"p": 2})
	deadline := time.Now().Add(10 * time.Second)
	for regionsJSON(t, answer.Regions) != regionsJSON(t, want) {
		ev, ok := c.nextData(t, time.Until(deadline))
		if !ok {
			t.Fatalf("stream never followed the re-pin; folded %s", regionsJSON(t, answer.Regions))
		}
		answer = foldRouterEvent(t, answer, ev)
		if regionsJSON(t, answer.Regions) == regionsJSON(t, want) && ev.ID != wantID {
			t.Fatalf("converged with id %q, want %q", ev.ID, wantID)
		}
	}
}

// An upstream event whose id does not parse is a protocol error: the
// relay must drop that stream and resubscribe for a fresh, validated
// snapshot instead of folding bytes whose generation is unknown. The
// client's first data event carries the good composite — nothing
// stamped with (or folded past) the garbage id ever reaches it.
func TestRouterWatchResubscribesOnUnparseableUpstreamID(t *testing.T) {
	a := newSSEFake(t)
	a.set("x", 1, []c2mn.RegionCount{{Region: 1, Count: 8}})
	a.mu.Lock()
	a.badIDStreams = 1
	a.mu.Unlock()

	rt, err := New(Config{Backends: []string{a.srv.URL}, WatchHeartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	c := dialRouterWatch(t, ts.URL+"/v1/venues/x/watch?k=5", "")
	ev, ok := c.nextData(t, 10*time.Second)
	if !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v ok=%v", ev, ok)
	}
	if want := notify.EncodeEventID(map[string]uint64{"x": 1}); ev.ID != want {
		t.Fatalf("snapshot id = %q, want %q (the validated resubscription's)", ev.ID, want)
	}
	answer := foldRouterEvent(t, notify.Answer{}, ev)
	want := []c2mn.RegionCount{{Region: 1, Count: 8}}
	if regionsJSON(t, answer.Regions) != regionsJSON(t, want) {
		t.Fatalf("snapshot = %s, want %s", regionsJSON(t, answer.Regions), regionsJSON(t, want))
	}
}

// A watched venue whose backend is down and stays down must not leave
// the client stream heartbeating forever with no data: the initial
// gather is bounded, and past the deadline the stream ends with a
// terminal goodbye so the client can retry — matching the poll path,
// which would have returned an error.
func TestRouterWatchBoundsInitialGather(t *testing.T) {
	a := newSSEFake(t)
	a.set("down", 1, []c2mn.RegionCount{{Region: 1, Count: 2}})

	rt, err := New(Config{
		Backends:            []string{a.srv.URL},
		WatchHeartbeat:      50 * time.Millisecond,
		WatchConnectTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	a.srv.Close() // the owner is discovered, then dies before the subscribe

	ts := routerServer(t, rt)
	c := dialRouterWatch(t, ts.URL+"/v1/venues/down/watch?k=5", "")
	ev, ok := c.nextData(t, 10*time.Second)
	if !ok || ev.Name != "goodbye" {
		t.Fatalf("event = %+v ok=%v, want a bounded-gather goodbye", ev, ok)
	}
	var g notify.GoodbyeData
	if err := json.Unmarshal(ev.Data, &g); err != nil || g.Reason != notify.ReasonError {
		t.Fatalf("goodbye payload %s", ev.Data)
	}
}

func pinVenue(t *testing.T, routerURL, venue, backend string) {
	t.Helper()
	body, err := json.Marshal(map[string]string{"venue": venue, "backend": backend})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/admin/pins", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin %s -> %s: %s", venue, backend, resp.Status)
	}
}

func TestRouterWatchVenueGoneSaysGoodbye(t *testing.T) {
	a := newSSEFake(t)
	a.set("solo", 1, []c2mn.RegionCount{{Region: 1, Count: 3}})
	rt, err := New(Config{Backends: []string{a.srv.URL}, WatchHeartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	c := dialRouterWatch(t, ts.URL+"/v1/venues/solo/watch", "")
	if ev, ok := c.nextData(t, 5*time.Second); !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v", ev)
	}
	a.remove("solo")
	// goneAfter consecutive unknown answers end the stream with a
	// terminal goodbye rather than silent reconnect churn.
	ev, ok := c.nextData(t, 15*time.Second)
	if !ok || ev.Name != "goodbye" {
		t.Fatalf("after unload: %+v ok=%v, want goodbye", ev, ok)
	}
	var g notify.GoodbyeData
	if err := json.Unmarshal(ev.Data, &g); err != nil || g.Reason != notify.ReasonUnknownVenue {
		t.Fatalf("goodbye payload %s", ev.Data)
	}
}

func TestRouterStopWatchesSaysGoodbyeDraining(t *testing.T) {
	a := newSSEFake(t)
	a.set("v", 1, []c2mn.RegionCount{{Region: 1, Count: 3}})
	rt, err := New(Config{Backends: []string{a.srv.URL}, WatchHeartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	ts := routerServer(t, rt)

	c := dialRouterWatch(t, ts.URL+"/v1/venues/v/watch", "")
	if ev, ok := c.nextData(t, 5*time.Second); !ok || ev.Name != "snapshot" {
		t.Fatalf("first event = %+v", ev)
	}
	rt.StopWatches()
	rt.StopWatches() // idempotent
	ev, ok := c.nextData(t, 5*time.Second)
	if !ok || ev.Name != "goodbye" {
		t.Fatalf("after StopWatches: %+v ok=%v", ev, ok)
	}
	var g notify.GoodbyeData
	if err := json.Unmarshal(ev.Data, &g); err != nil || g.Reason != notify.ReasonDraining {
		t.Fatalf("goodbye payload %s", ev.Data)
	}
}

func TestRouterIntrospectionNoStore(t *testing.T) {
	a := newFakeBackend(t)
	a.venues["v"] = &fakeVenue{Regions: []c2mn.RegionCount{{Region: 1, Count: 2}}}
	rt := testRouter(t, Config{}, a)
	ts := routerServer(t, rt)
	for _, path := range []string{"/v1/stats", "/v1/venues", "/healthz", "/readyz", "/admin/backends", "/admin/assignments"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s: Cache-Control = %q, want no-store", path, cc)
		}
	}
}
