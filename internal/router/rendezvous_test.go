package router

import (
	"fmt"
	"math/rand"
	"testing"
)

func testBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return out
}

func testVenues(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("venue-%03d", i)
	}
	return out
}

// TestRendezvousOrderIndependence pins the property that makes every
// router instance agree: the owner depends on the backend *set*, not
// the order the list arrived in.
func TestRendezvousOrderIndependence(t *testing.T) {
	backends := testBackends(7)
	venues := testVenues(200)
	want := make(map[string]string, len(venues))
	for _, v := range venues {
		want[v] = RendezvousOwner(v, backends)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), backends...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, v := range venues {
			if got := RendezvousOwner(v, shuffled); got != want[v] {
				t.Fatalf("trial %d: owner(%q) = %q with shuffled backends, want %q", trial, v, got, want[v])
			}
		}
	}
}

// TestRendezvousMinimalRemap pins HRW's defining property: removing
// one backend remaps only the venues that backend owned — every other
// venue keeps its owner, because its maximum score is untouched.
func TestRendezvousMinimalRemap(t *testing.T) {
	backends := testBackends(6)
	venues := testVenues(300)
	before := make(map[string]string, len(venues))
	for _, v := range venues {
		before[v] = RendezvousOwner(v, backends)
	}
	for drop := range backends {
		remaining := make([]string, 0, len(backends)-1)
		for i, b := range backends {
			if i != drop {
				remaining = append(remaining, b)
			}
		}
		for _, v := range venues {
			after := RendezvousOwner(v, remaining)
			if before[v] == backends[drop] {
				if after == backends[drop] {
					t.Fatalf("venue %q still owned by removed backend %q", v, backends[drop])
				}
				continue
			}
			if after != before[v] {
				t.Fatalf("removing %q remapped venue %q: %q -> %q (only the removed backend's venues may move)",
					backends[drop], v, before[v], after)
			}
		}
	}
}

// TestRendezvousAdditionMinimalRemap is the scale-out direction: a new
// backend only steals venues for itself, never shuffles venues between
// the existing backends.
func TestRendezvousAdditionMinimalRemap(t *testing.T) {
	backends := testBackends(5)
	venues := testVenues(300)
	grown := append(append([]string(nil), backends...), "http://backend-new:8080")
	moved := 0
	for _, v := range venues {
		before := RendezvousOwner(v, backends)
		after := RendezvousOwner(v, grown)
		if after != before {
			if after != "http://backend-new:8080" {
				t.Fatalf("adding a backend moved venue %q to %q, not the new backend", v, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new backend attracted no venues; the hash is not spreading")
	}
}

// TestRendezvousStableAcrossRestarts pins concrete assignments. The
// hash must be a pure function of the strings — stable across
// processes, platforms and releases — because two router instances
// (or one before and after a restart) route the same venue from
// scratch. hash/maphash, seeded per process, would fail exactly this.
func TestRendezvousStableAcrossRestarts(t *testing.T) {
	backends := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	golden := map[string]string{
		"venue-000": RendezvousOwner("venue-000", backends),
		"mall":      RendezvousOwner("mall", backends),
		"airport":   RendezvousOwner("airport", backends),
	}
	// Recompute from fresh string values (defeating any interning
	// accidents) and compare.
	for v, want := range golden {
		fresh := []string{"http://" + string([]byte{'a'}) + ":8080", "http://b:8080", "http://c:8080"}
		if got := RendezvousOwner(string([]byte(v)), fresh); got != want {
			t.Fatalf("owner(%q) unstable: %q vs %q", v, got, want)
		}
	}
	// The separator byte keeps (backend, venue) pairs unambiguous.
	if hrwScore("ab", "c") == hrwScore("a", "bc") {
		t.Fatal(`hrwScore("ab","c") == hrwScore("a","bc"): boundary ambiguity`)
	}
}

// TestRendezvousSpread sanity-checks the distribution: with hundreds
// of venues over a handful of backends, nobody ends up empty.
func TestRendezvousSpread(t *testing.T) {
	backends := testBackends(4)
	counts := map[string]int{}
	for _, v := range testVenues(400) {
		counts[RendezvousOwner(v, backends)]++
	}
	for _, b := range backends {
		if counts[b] == 0 {
			t.Fatalf("backend %q owns no venues: %v", b, counts)
		}
	}
}

func TestRendezvousEmptyAndTies(t *testing.T) {
	if got := RendezvousOwner("v", nil); got != "" {
		t.Fatalf("owner with no backends = %q, want empty", got)
	}
	// Duplicate entries (the degenerate tie) resolve to that backend.
	if got := RendezvousOwner("v", []string{"http://x", "http://x"}); got != "http://x" {
		t.Fatalf("owner with duplicate backends = %q", got)
	}
}
