package router

import (
	"encoding/json"
	"errors"
	"net/http"

	"c2mn"
)

// wireError mirrors msserve's /v1 error payload, so clients see one
// error shape whether the router or a backend produced it.
type wireError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorCode derives the stable machine-readable code of a
// router-originated error: the library's sentinel when one matches, a
// status-derived fallback otherwise.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, c2mn.ErrNoBackend):
		return "no_backend"
	case errors.Is(err, c2mn.ErrMigrationConflict):
		return "migration_conflict"
	case errors.Is(err, c2mn.ErrUnknownVenue):
		return "unknown_venue"
	case errors.Is(err, c2mn.ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, c2mn.ErrCanceled):
		return "canceled"
	}
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusBadGateway:
		return "backend_unreachable"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	if status >= http.StatusInternalServerError {
		return "internal"
	}
	return "unprocessable"
}

// writeError emits a router-originated error in msserve's /v1 typed
// envelope. Backend-originated errors are never re-enveloped — their
// bodies stream through forward verbatim.
func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, map[string]wireError{"error": {
		Code: errorCode(status, err), Message: err.Error(),
		RequestID: r.Header.Get(requestIDHeader),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// noStore marks introspection responses uncacheable: stats, listings,
// health, and admin answers describe this instant on this process, and
// a shared cache replaying them would misreport the fleet.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}
