package router

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"c2mn"
)

// wireError mirrors msserve's /v1 error payload, so clients see one
// error shape whether the router or a backend produced it.
type wireError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// errorCode derives the stable machine-readable code of a
// router-originated error: the library's sentinel when one matches, a
// status-derived fallback otherwise.
func errorCode(status int, err error) string {
	switch {
	case errors.Is(err, c2mn.ErrNoBackend):
		return "no_backend"
	case errors.Is(err, c2mn.ErrMigrationConflict):
		return "migration_conflict"
	case errors.Is(err, c2mn.ErrUnknownVenue):
		return "unknown_venue"
	case errors.Is(err, c2mn.ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, c2mn.ErrCanceled):
		return "canceled"
	}
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusBadGateway:
		return "backend_unreachable"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	if status >= http.StatusInternalServerError {
		return "internal"
	}
	return "unprocessable"
}

// writeError emits a router-originated error in msserve's /v1 typed
// envelope. Backend-originated errors are never re-enveloped — their
// bodies stream through forward verbatim.
func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, map[string]wireError{"error": {
		Code: errorCode(status, err), Message: err.Error(),
		RequestID: r.Header.Get(requestIDHeader),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// noStore marks introspection responses uncacheable: stats, listings,
// health, and admin answers describe this instant on this process, and
// a shared cache replaying them would misreport the fleet.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

// envelopeWriter upgrades the mux's own plain-text 404/405 responses
// under /v1 to the typed JSON envelope, mirroring msserve: the sniff
// on Content-Type text/plain only ever matches ServeMux's (and
// http.Error's) own output, since router handlers and proxied backend
// responses always carry an explicit non-text type. The mux's Allow
// header on a 405 survives — headers are shared with the underlying
// writer. Flush and Unwrap keep /v1/watch streaming through the
// wrapper (internal/notify resolves its flusher via
// http.NewResponseController's Unwrap chain).
type envelopeWriter struct {
	http.ResponseWriter
	r         *http.Request
	intercept bool
	status    int
	wrote     bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wrote || ew.intercept {
		return
	}
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(ew.Header().Get("Content-Type"), "text/plain") {
		ew.intercept = true
		ew.status = status
		return
	}
	ew.wrote = true
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if ew.intercept {
		// Drop the plain-text body; finish writes the envelope.
		return len(b), nil
	}
	ew.wrote = true
	return ew.ResponseWriter.Write(b)
}

func (ew *envelopeWriter) finish(rt *Router) {
	if !ew.intercept {
		return
	}
	h := ew.Header()
	h.Del("X-Content-Type-Options")
	msg := "no route matches " + ew.r.Method + " " + ew.r.URL.Path
	if ew.status == http.StatusMethodNotAllowed {
		msg = ew.r.Method + " not allowed on " + ew.r.URL.Path
		if allow := h.Get("Allow"); allow != "" {
			msg += " (allowed: " + allow + ")"
		}
	}
	rt.writeError(ew.ResponseWriter, ew.r, ew.status, errors.New(msg))
}

func (ew *envelopeWriter) Flush() {
	if f, ok := ew.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (ew *envelopeWriter) Unwrap() http.ResponseWriter { return ew.ResponseWriter }
