package crf

import (
	"math"
	"math/rand"
	"testing"
)

// chainLattice builds a lattice with fixed label count and random
// one-hot-ish features: unary features carry (obs == label) evidence,
// pairwise features carry (same label) evidence.
func chainLattice(rng *rand.Rand, n, labels int, noise float64) *Lattice {
	const dim = 2
	l := &Lattice{
		Unary: make([][][]float64, n),
		Pair:  make([][][][]float64, n-1),
		Truth: make([]int, n),
	}
	state := rng.Intn(labels)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			state = rng.Intn(labels)
		}
		l.Truth[i] = state
		obs := state
		if rng.Float64() < noise {
			obs = rng.Intn(labels)
		}
		l.Unary[i] = make([][]float64, labels)
		for k := 0; k < labels; k++ {
			f := make([]float64, dim)
			if k == obs {
				f[0] = 1
			}
			l.Unary[i][k] = f
		}
		if i+1 < n {
			l.Pair[i] = make([][][]float64, labels)
			for k := 0; k < labels; k++ {
				l.Pair[i][k] = make([][]float64, labels)
				for m := 0; m < labels; m++ {
					f := make([]float64, dim)
					if k == m {
						f[1] = 1
					}
					l.Pair[i][k][m] = f
				}
			}
		}
	}
	return l
}

func TestValidate(t *testing.T) {
	l := &Lattice{Unary: [][][]float64{{{1, 0}}}}
	if err := l.Validate(2); err != nil {
		t.Errorf("minimal lattice invalid: %v", err)
	}
	if err := l.Validate(3); err == nil {
		t.Errorf("wrong dim should fail")
	}
	bad := &Lattice{Unary: [][][]float64{{}}}
	if err := bad.Validate(2); err == nil {
		t.Errorf("empty candidates should fail")
	}
	badTruth := &Lattice{Unary: [][][]float64{{{1, 0}}}, Truth: []int{5}}
	if err := badTruth.Validate(2); err == nil {
		t.Errorf("out-of-range truth should fail")
	}
}

func TestFitRecoversChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var data []*Lattice
	for i := 0; i < 30; i++ {
		data = append(data, chainLattice(rng, 20, 3, 0.25))
	}
	m, err := Fit(data, Config{Dim: 2, Sigma2: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Both evidence weights should be clearly positive.
	if m.Weights[0] < 0.5 || m.Weights[1] < 0.1 {
		t.Errorf("weights = %v", m.Weights)
	}
	// Decoding beats raw observation reading on noisy test chains.
	var crfOK, rawOK, total int
	for i := 0; i < 20; i++ {
		l := chainLattice(rng, 20, 3, 0.25)
		path, _, err := m.Decode(l)
		if err != nil {
			t.Fatal(err)
		}
		for j := range path {
			total++
			if path[j] == l.Truth[j] {
				crfOK++
			}
			// The raw guess is the candidate with the unary evidence.
			raw := 0
			for k, f := range l.Unary[j] {
				if f[0] == 1 {
					raw = k
				}
			}
			if raw == l.Truth[j] {
				rawOK++
			}
		}
	}
	if crfOK <= rawOK {
		t.Errorf("CRF %d/%d should beat raw %d/%d", crfOK, total, rawOK, total)
	}
}

func TestViterbiOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := chainLattice(rng, 6, 3, 0.3)
	m := &Model{Weights: []float64{1.7, 0.9}}
	path, score, err := m.Decode(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PathScore(l, path); math.Abs(got-score) > 1e-9 {
		t.Fatalf("Decode score %v != PathScore %v", score, got)
	}
	// Exhaustive check over all 3^6 paths.
	n := l.Len()
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	for code := 0; code < total; code++ {
		p := make([]int, n)
		c := code
		for i := 0; i < n; i++ {
			p[i] = c % 3
			c /= 3
		}
		if m.PathScore(l, p) > score+1e-9 {
			t.Fatalf("found better path %v", p)
		}
	}
}

func TestLogZConsistency(t *testing.T) {
	// logZ must equal log Σ exp(score(path)) over all paths.
	rng := rand.New(rand.NewSource(3))
	l := chainLattice(rng, 5, 2, 0.3)
	m := &Model{Weights: []float64{0.8, -0.4}}
	logZ, err := m.LogZ(l)
	if err != nil {
		t.Fatal(err)
	}
	sum := math.Inf(-1)
	n := l.Len()
	total := 1 << n
	for code := 0; code < total; code++ {
		p := make([]int, n)
		for i := 0; i < n; i++ {
			p[i] = (code >> i) & 1
		}
		sum = logAdd(sum, m.PathScore(l, p))
	}
	if math.Abs(logZ-sum) > 1e-9 {
		t.Fatalf("logZ = %v, brute force = %v", logZ, sum)
	}
}

func TestGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := chainLattice(rng, 7, 3, 0.4)
	w := []float64{0.3, -0.2}
	g := make([]float64, 2)
	f0 := l.negLogLik(w, g)
	const h = 1e-6
	for d := 0; d < 2; d++ {
		wp := append([]float64(nil), w...)
		wp[d] += h
		gp := make([]float64, 2)
		fp := l.negLogLik(wp, gp)
		numeric := (fp - f0) / h
		if math.Abs(numeric-g[d]) > 1e-4 {
			t.Errorf("grad[%d] = %v, numeric %v", d, g[d], numeric)
		}
	}
}

func TestVaryingCandidateSets(t *testing.T) {
	// Lattice positions with different candidate counts (the indoor
	// use case) must work end to end.
	l := &Lattice{
		Unary: [][][]float64{
			{{1, 0}, {0, 0}},
			{{0, 0}, {1, 0}, {0.5, 0}},
			{{1, 0}},
		},
		Pair: [][][][]float64{
			{{{0, 1}, {0, 0}, {0, 0}}, {{0, 0}, {0, 1}, {0, 0}}},
			{{{0, 1}}, {{0, 0}}, {{0, 0}}},
		},
		Truth: []int{0, 1, 0},
	}
	if err := l.Validate(2); err != nil {
		t.Fatal(err)
	}
	m, err := Fit([]*Lattice{l}, Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	path, _, err := m.Decode(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i, p := range path {
		if p < 0 || p >= len(l.Unary[i]) {
			t.Fatalf("path index out of range at %d: %d", i, p)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{}); err == nil {
		t.Errorf("zero dim should fail")
	}
	noTruth := &Lattice{Unary: [][][]float64{{{1, 0}}}}
	if _, err := Fit([]*Lattice{noTruth}, Config{Dim: 2}); err == nil {
		t.Errorf("missing truth should fail")
	}
}

func TestDecodeEmptyAndUnaryOnly(t *testing.T) {
	m := &Model{Weights: []float64{1, 0}}
	path, _, err := m.Decode(&Lattice{})
	if err != nil || path != nil {
		t.Errorf("empty decode = %v, %v", path, err)
	}
	// Unary-only lattice (nil Pair).
	l := &Lattice{Unary: [][][]float64{
		{{0, 0}, {1, 0}},
		{{1, 0}, {0, 0}},
	}}
	path, _, err = m.Decode(l)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 1 || path[1] != 0 {
		t.Errorf("unary-only path = %v", path)
	}
}
