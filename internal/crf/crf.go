// Package crf implements a linear-chain conditional random field over
// a label lattice: every position carries its own candidate label set,
// unary feature vectors per candidate and pairwise feature vectors per
// transition. Training maximises the exact conditional likelihood via
// forward–backward and L-BFGS; decoding is exact Viterbi.
//
// The paper positions C2MN against exactly this class of model
// (§III-A: "sequential models like linear-chain CRF cannot model
// dependencies for hidden nodes" and cannot couple the two label
// types). The package serves two roles here:
//
//   - the LCCRF baseline: a "generic CRF library" applied to the same
//     indoor features, quantifying what the coupled model adds;
//   - an exact decoder for chain-structured subsets of C2MN (CMN
//     without segmentation cliques factorises into two chains).
package crf

import (
	"fmt"
	"math"

	"c2mn/internal/lbfgs"
)

// Lattice is one training or decoding instance: a sequence of
// positions, each with candidate labels. Features are dense vectors of
// a fixed dimensionality shared with the weight vector.
type Lattice struct {
	// Unary[i][k] is the feature vector of candidate k at position i.
	Unary [][][]float64
	// Pair[i][k][l] is the feature vector of the transition from
	// candidate k at position i to candidate l at position i+1;
	// len(Pair) == len(Unary)-1. A nil Pair disables transition
	// features.
	Pair [][][][]float64
	// Truth[i] is the index of the gold candidate at position i
	// (training only; -1 marks unsupervised positions, which make the
	// instance unusable for training).
	Truth []int
}

// Len returns the number of positions.
func (l *Lattice) Len() int { return len(l.Unary) }

// Validate checks structural consistency against dimension dim.
func (l *Lattice) Validate(dim int) error {
	n := l.Len()
	if l.Pair != nil && len(l.Pair) != max(0, n-1) {
		return fmt.Errorf("crf: %d pair slots for %d positions", len(l.Pair), n)
	}
	if l.Truth != nil && len(l.Truth) != n {
		return fmt.Errorf("crf: %d truth entries for %d positions", len(l.Truth), n)
	}
	for i := 0; i < n; i++ {
		if len(l.Unary[i]) == 0 {
			return fmt.Errorf("crf: position %d has no candidates", i)
		}
		for k, f := range l.Unary[i] {
			if len(f) != dim {
				return fmt.Errorf("crf: unary feature dim %d at (%d,%d), want %d", len(f), i, k, dim)
			}
		}
		if l.Truth != nil && (l.Truth[i] < 0 || l.Truth[i] >= len(l.Unary[i])) {
			return fmt.Errorf("crf: truth index %d out of range at %d", l.Truth[i], i)
		}
		if l.Pair != nil && i+1 < n {
			if len(l.Pair[i]) != len(l.Unary[i]) {
				return fmt.Errorf("crf: pair rows %d at %d, want %d", len(l.Pair[i]), i, len(l.Unary[i]))
			}
			for k := range l.Pair[i] {
				if len(l.Pair[i][k]) != len(l.Unary[i+1]) {
					return fmt.Errorf("crf: pair cols %d at (%d,%d)", len(l.Pair[i][k]), i, k)
				}
				for m, f := range l.Pair[i][k] {
					if len(f) != dim {
						return fmt.Errorf("crf: pair feature dim %d at (%d,%d,%d)", len(f), i, k, m)
					}
				}
			}
		}
	}
	return nil
}

// Model is a trained lattice CRF.
type Model struct {
	Weights []float64
}

// Config parameterises Fit.
type Config struct {
	// Dim is the feature dimensionality.
	Dim int
	// Sigma2 is the Gaussian prior variance (default 1).
	Sigma2 float64
	// MaxIter bounds L-BFGS iterations (default 100).
	MaxIter int
}

// Fit trains a model on lattices with gold labels by minimising the
// exact regularised negative log-likelihood. The objective is convex.
func Fit(data []*Lattice, cfg Config) (*Model, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("crf: Dim must be positive")
	}
	if cfg.Sigma2 <= 0 {
		cfg.Sigma2 = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	for li, l := range data {
		if err := l.Validate(cfg.Dim); err != nil {
			return nil, fmt.Errorf("crf: lattice %d: %w", li, err)
		}
		if l.Truth == nil {
			return nil, fmt.Errorf("crf: lattice %d has no gold labels", li)
		}
	}
	obj := func(w []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, cfg.Dim)
		for _, l := range data {
			f += l.negLogLik(w, g)
		}
		for d := range g {
			f += w[d] * w[d] / (2 * cfg.Sigma2)
			g[d] += w[d] / cfg.Sigma2
		}
		return f, g
	}
	res, err := lbfgs.Minimize(obj, make([]float64, cfg.Dim), lbfgs.Options{MaxIter: cfg.MaxIter, GradTol: 1e-6})
	if err != nil && res.X == nil {
		return nil, fmt.Errorf("crf: %w", err)
	}
	return &Model{Weights: res.X}, nil
}

// negLogLik adds the gradient of -log P(truth | lattice) to g and
// returns the value. It runs exact forward-backward in log space.
func (l *Lattice) negLogLik(w []float64, g []float64) float64 {
	n := l.Len()
	if n == 0 {
		return 0
	}
	uScore, pScore := l.scores(w)
	logZ, alpha, beta := l.forwardBackward(uScore, pScore)

	// Value: logZ - score(truth).
	truthScore := 0.0
	for i := 0; i < n; i++ {
		truthScore += uScore[i][l.Truth[i]]
		if i+1 < n && pScore != nil {
			truthScore += pScore[i][l.Truth[i]][l.Truth[i+1]]
		}
	}

	// Gradient: E[f] - f(truth).
	for i := 0; i < n; i++ {
		for k := range l.Unary[i] {
			p := math.Exp(alpha[i][k] + beta[i][k] - logZ)
			axpy(g, p, l.Unary[i][k])
		}
		axpy(g, -1, l.Unary[i][l.Truth[i]])
	}
	if pScore != nil {
		for i := 0; i+1 < n; i++ {
			for k := range l.Unary[i] {
				for m := range l.Unary[i+1] {
					p := math.Exp(alpha[i][k] + pScore[i][k][m] + uScore[i+1][m] + beta[i+1][m] - logZ)
					axpy(g, p, l.Pair[i][k][m])
				}
			}
			axpy(g, -1, l.Pair[i][l.Truth[i]][l.Truth[i+1]])
		}
	}
	return logZ - truthScore
}

// scores precomputes w·f for every unary and pairwise feature.
func (l *Lattice) scores(w []float64) (uScore [][]float64, pScore [][][]float64) {
	n := l.Len()
	uScore = make([][]float64, n)
	for i := 0; i < n; i++ {
		uScore[i] = make([]float64, len(l.Unary[i]))
		for k, f := range l.Unary[i] {
			uScore[i][k] = dot(w, f)
		}
	}
	if l.Pair == nil {
		return uScore, nil
	}
	pScore = make([][][]float64, n-1)
	for i := 0; i+1 < n; i++ {
		pScore[i] = make([][]float64, len(l.Unary[i]))
		for k := range l.Unary[i] {
			pScore[i][k] = make([]float64, len(l.Unary[i+1]))
			for m, f := range l.Pair[i][k] {
				pScore[i][k][m] = dot(w, f)
			}
		}
	}
	return uScore, pScore
}

// forwardBackward returns logZ and the log-space alpha/beta lattices.
// alpha[i][k] includes the unary score at (i,k); beta[i][k] excludes it.
func (l *Lattice) forwardBackward(uScore [][]float64, pScore [][][]float64) (float64, [][]float64, [][]float64) {
	n := l.Len()
	alpha := make([][]float64, n)
	beta := make([][]float64, n)
	alpha[0] = append([]float64(nil), uScore[0]...)
	for i := 1; i < n; i++ {
		alpha[i] = make([]float64, len(uScore[i]))
		for m := range uScore[i] {
			acc := math.Inf(-1)
			for k := range uScore[i-1] {
				t := alpha[i-1][k]
				if pScore != nil {
					t += pScore[i-1][k][m]
				}
				acc = logAdd(acc, t)
			}
			alpha[i][m] = acc + uScore[i][m]
		}
	}
	beta[n-1] = make([]float64, len(uScore[n-1]))
	for i := n - 2; i >= 0; i-- {
		beta[i] = make([]float64, len(uScore[i]))
		for k := range uScore[i] {
			acc := math.Inf(-1)
			for m := range uScore[i+1] {
				t := uScore[i+1][m] + beta[i+1][m]
				if pScore != nil {
					t += pScore[i][k][m]
				}
				acc = logAdd(acc, t)
			}
			beta[i][k] = acc
		}
	}
	logZ := math.Inf(-1)
	for k := range alpha[n-1] {
		logZ = logAdd(logZ, alpha[n-1][k])
	}
	return logZ, alpha, beta
}

// Decode returns the Viterbi (maximum a posteriori) candidate indices
// and the path score.
func (m *Model) Decode(l *Lattice) ([]int, float64, error) {
	if err := l.Validate(len(m.Weights)); err != nil {
		return nil, 0, err
	}
	n := l.Len()
	if n == 0 {
		return nil, 0, nil
	}
	uScore, pScore := l.scores(m.Weights)
	best := append([]float64(nil), uScore[0]...)
	back := make([][]int32, n)
	for i := 1; i < n; i++ {
		cur := make([]float64, len(uScore[i]))
		back[i] = make([]int32, len(uScore[i]))
		for mI := range uScore[i] {
			bestV := math.Inf(-1)
			bestK := 0
			for k := range uScore[i-1] {
				t := best[k]
				if pScore != nil {
					t += pScore[i-1][k][mI]
				}
				if t > bestV {
					bestV, bestK = t, k
				}
			}
			cur[mI] = bestV + uScore[i][mI]
			back[i][mI] = int32(bestK)
		}
		best = cur
	}
	bestV := math.Inf(-1)
	bestK := 0
	for k, v := range best {
		if v > bestV {
			bestV, bestK = v, k
		}
	}
	path := make([]int, n)
	path[n-1] = bestK
	for i := n - 1; i > 0; i-- {
		path[i-1] = int(back[i][path[i]])
	}
	return path, bestV, nil
}

// LogZ exposes the partition function for tests.
func (m *Model) LogZ(l *Lattice) (float64, error) {
	if err := l.Validate(len(m.Weights)); err != nil {
		return 0, err
	}
	if l.Len() == 0 {
		return 0, nil
	}
	u, p := l.scores(m.Weights)
	z, _, _ := l.forwardBackward(u, p)
	return z, nil
}

// PathScore returns w·f(path) for tests.
func (m *Model) PathScore(l *Lattice, path []int) float64 {
	s := 0.0
	for i := range path {
		s += dot(m.Weights, l.Unary[i][path[i]])
		if i+1 < len(path) && l.Pair != nil {
			s += dot(m.Weights, l.Pair[i][path[i]][path[i+1]])
		}
	}
	return s
}

func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
