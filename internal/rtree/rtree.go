// Package rtree implements a static, bulk-loaded R-tree over
// rectangles using Sort-Tile-Recursive (STR) packing. The tree indexes
// the indoor partitions and semantic regions of a venue (the paper
// keeps "an R-tree to index all partitions and their corresponding
// semantic regions", §V-B1) and supports rectangle search, circle
// search and k-nearest-neighbour queries.
package rtree

import (
	"container/heap"
	"sort"

	"c2mn/internal/geom"
)

// Entry is one indexed item: a bounding rectangle plus an opaque ID the
// caller can resolve back to its own objects.
type Entry struct {
	Rect geom.Rect
	ID   int
}

// Tree is an immutable STR-packed R-tree.
type Tree struct {
	root *node
	size int
	// fanout is the maximum number of children per node.
	fanout int
}

type node struct {
	rect     geom.Rect
	children []*node
	entries  []Entry // non-nil only at leaves
}

func (n *node) leaf() bool { return n.entries != nil }

// DefaultFanout is the node capacity used by New.
const DefaultFanout = 16

// New bulk-loads a tree from entries using STR packing. The entries
// slice is not retained. An empty input yields an empty, queryable
// tree.
func New(entries []Entry) *Tree {
	return NewWithFanout(entries, DefaultFanout)
}

// NewWithFanout bulk-loads with an explicit node capacity (minimum 2).
func NewWithFanout(entries []Entry, fanout int) *Tree {
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{size: len(entries), fanout: fanout}
	if len(entries) == 0 {
		return t
	}
	own := make([]Entry, len(entries))
	copy(own, entries)
	leaves := packLeaves(own, fanout)
	t.root = packUpward(leaves, fanout)
	return t
}

// packLeaves tiles entries into leaf nodes: sort by center X, slice
// into vertical strips of ~sqrt(n/fanout) runs, sort each strip by
// center Y, and chunk into leaves.
func packLeaves(entries []Entry, fanout int) []*node {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.Center().X < entries[j].Rect.Center().X
	})
	nLeaves := (len(entries) + fanout - 1) / fanout
	nStrips := isqrtCeil(nLeaves)
	perStrip := nStrips * fanout
	var leaves []*node
	for s := 0; s < len(entries); s += perStrip {
		strip := entries[s:min(s+perStrip, len(entries))]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Rect.Center().Y < strip[j].Rect.Center().Y
		})
		for o := 0; o < len(strip); o += fanout {
			chunk := strip[o:min(o+fanout, len(strip))]
			ln := &node{entries: chunk}
			ln.rect = chunk[0].Rect
			for _, e := range chunk[1:] {
				ln.rect = ln.rect.Union(e.Rect)
			}
			leaves = append(leaves, ln)
		}
	}
	return leaves
}

// packUpward builds internal levels until a single root remains.
func packUpward(level []*node, fanout int) *node {
	for len(level) > 1 {
		sort.Slice(level, func(i, j int) bool {
			return level[i].rect.Center().X < level[j].rect.Center().X
		})
		nParents := (len(level) + fanout - 1) / fanout
		nStrips := isqrtCeil(nParents)
		perStrip := nStrips * fanout
		var next []*node
		for s := 0; s < len(level); s += perStrip {
			strip := level[s:min(s+perStrip, len(level))]
			sort.Slice(strip, func(i, j int) bool {
				return strip[i].rect.Center().Y < strip[j].rect.Center().Y
			})
			for o := 0; o < len(strip); o += fanout {
				chunk := strip[o:min(o+fanout, len(strip))]
				in := &node{children: chunk}
				in.rect = chunk[0].rect
				for _, ch := range chunk[1:] {
					in.rect = in.rect.Union(ch.rect)
				}
				next = append(next, in)
			}
		}
		level = next
	}
	return level[0]
}

func isqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// Search appends to dst the IDs of all entries whose rectangle
// intersects query, and returns the extended slice.
func (t *Tree) Search(query geom.Rect, dst []int) []int {
	if t.root == nil {
		return dst
	}
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, query geom.Rect, dst []int) []int {
	if !n.rect.Intersects(query) {
		return dst
	}
	if n.leaf() {
		for _, e := range n.entries {
			if e.Rect.Intersects(query) {
				dst = append(dst, e.ID)
			}
		}
		return dst
	}
	for _, ch := range n.children {
		dst = searchNode(ch, query, dst)
	}
	return dst
}

// SearchCircle appends the IDs of entries whose rectangle intersects
// the disk centered at c with radius r.
func (t *Tree) SearchCircle(c geom.Point, r float64, dst []int) []int {
	if t.root == nil {
		return dst
	}
	return searchCircleNode(t.root, c, r, dst)
}

func searchCircleNode(n *node, c geom.Point, r float64, dst []int) []int {
	if !n.rect.IntersectsCircle(c, r) {
		return dst
	}
	if n.leaf() {
		for _, e := range n.entries {
			if e.Rect.IntersectsCircle(c, r) {
				dst = append(dst, e.ID)
			}
		}
		return dst
	}
	for _, ch := range n.children {
		dst = searchCircleNode(ch, c, r, dst)
	}
	return dst
}

// Neighbor is one k-NN result: the entry ID and its rectangle's
// distance to the query point.
type Neighbor struct {
	ID   int
	Dist float64
}

// Nearest returns up to k entries ordered by increasing rectangle
// distance from p, using best-first branch-and-bound traversal.
func (t *Tree) Nearest(p geom.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	pq := &distHeap{}
	heap.Init(pq)
	heap.Push(pq, distItem{node: t.root, dist: t.root.rect.DistPoint(p)})
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		it := heap.Pop(pq).(distItem)
		switch {
		case it.node == nil:
			out = append(out, Neighbor{ID: it.id, Dist: it.dist})
		case it.node.leaf():
			for _, e := range it.node.entries {
				heap.Push(pq, distItem{id: e.ID, dist: e.Rect.DistPoint(p)})
			}
		default:
			for _, ch := range it.node.children {
				heap.Push(pq, distItem{node: ch, dist: ch.rect.DistPoint(p)})
			}
		}
	}
	return out
}

type distItem struct {
	node *node // nil for entry items
	id   int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
