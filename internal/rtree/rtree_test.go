package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"c2mn/internal/geom"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		x, y := rng.Float64()*100, rng.Float64()*100
		w, h := rng.Float64()*5, rng.Float64()*5
		entries[i] = Entry{
			Rect: geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+w, y+h)},
			ID:   i,
		}
	}
	return entries
}

func bruteSearch(entries []Entry, q geom.Rect) []int {
	var out []int
	for _, e := range entries {
		if e.Rect.Intersects(q) {
			out = append(out, e.ID)
		}
	}
	sort.Ints(out)
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Search(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, nil); len(got) != 0 {
		t.Errorf("Search on empty = %v", got)
	}
	if got := tr.Nearest(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("Nearest on empty = %v", got)
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d", tr.Height())
	}
}

func TestSingleEntry(t *testing.T) {
	e := Entry{Rect: geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(2, 2)}, ID: 7}
	tr := New([]Entry{e})
	got := tr.Search(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(3, 3)}, nil)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("Search = %v", got)
	}
	got = tr.Search(geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(6, 6)}, nil)
	if len(got) != 0 {
		t.Errorf("miss Search = %v", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 16, 17, 100, 500} {
		entries := randomEntries(rng, n)
		tr := New(entries)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 50; q++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			query := geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+rng.Float64()*20, y+rng.Float64()*20)}
			got := tr.Search(query, nil)
			sort.Ints(got)
			want := bruteSearch(entries, query)
			if len(got) != len(want) {
				t.Fatalf("n=%d query=%+v: got %d results, want %d", n, query, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d: result mismatch %v vs %v", n, got, want)
				}
			}
		}
	}
}

func TestSearchCircleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomEntries(rng, 300)
	tr := New(entries)
	for q := 0; q < 50; q++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		r := rng.Float64() * 15
		got := tr.SearchCircle(c, r, nil)
		sort.Ints(got)
		var want []int
		for _, e := range entries {
			if e.Rect.IntersectsCircle(c, r) {
				want = append(want, e.ID)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("circle query %v r=%v: got %d, want %d", c, r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("circle mismatch %v vs %v", got, want)
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 200)
	tr := New(entries)
	for q := 0; q < 30; q++ {
		p := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		dists := make([]float64, len(entries))
		for i, e := range entries {
			dists[i] = e.Rect.DistPoint(p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if nb.Dist != dists[i] && (nb.Dist-dists[i]) > 1e-12 {
				t.Fatalf("k=%d rank %d: dist %v, want %v", k, i, nb.Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatalf("Nearest results not ordered: %v", got)
			}
		}
	}
}

func TestNearestKLargerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	entries := randomEntries(rng, 5)
	tr := New(entries)
	got := tr.Nearest(geom.Pt(0, 0), 50)
	if len(got) != 5 {
		t.Errorf("Nearest with big k = %d results, want 5", len(got))
	}
}

func TestFanoutVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := randomEntries(rng, 257)
	query := geom.Rect{Min: geom.Pt(20, 20), Max: geom.Pt(60, 60)}
	want := bruteSearch(entries, query)
	for _, fanout := range []int{1, 2, 3, 8, 64, 1000} {
		tr := NewWithFanout(entries, fanout)
		got := tr.Search(query, nil)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("fanout %d: got %d results, want %d", fanout, len(got), len(want))
		}
		if tr.Height() < 1 {
			t.Errorf("fanout %d: height %d", fanout, tr.Height())
		}
	}
}

func TestSearchAppendsToDst(t *testing.T) {
	entries := []Entry{{Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, ID: 1}}
	tr := New(entries)
	dst := []int{99}
	got := tr.Search(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)}, dst)
	if len(got) != 2 || got[0] != 99 || got[1] != 1 {
		t.Errorf("append semantics broken: %v", got)
	}
}

func TestPropertySearchComplete(t *testing.T) {
	// Property: every entry is findable by querying its own rectangle.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomEntries(rng, 1+rng.Intn(200))
		tr := New(entries)
		for _, e := range entries {
			found := false
			for _, id := range tr.Search(e.Rect, nil) {
				if id == e.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
