package lbfgs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic builds a convex quadratic f(x) = Σ ci (xi - bi)^2.
func quadratic(c, b []float64) Objective {
	return func(x []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, len(x))
		for i := range x {
			d := x[i] - b[i]
			f += c[i] * d * d
			g[i] = 2 * c[i] * d
		}
		return f, g
	}
}

func rosenbrock(x []float64) (float64, []float64) {
	f := 0.0
	g := make([]float64, len(x))
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		f += 100*a*a + b*b
		g[i] += -400*x[i]*a - 2*b
		g[i+1] += 200 * a
	}
	return f, g
}

func TestMinimizeQuadratic(t *testing.T) {
	obj := quadratic([]float64{1, 10, 0.5}, []float64{3, -2, 7})
	res, err := Minimize(obj, []float64{0, 0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: %+v", res)
	}
	want := []float64{3, -2, 7}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
	if res.F > 1e-9 {
		t.Errorf("F = %v, want ~0", res.F)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 1} {
		if math.Abs(res.X[i]-want) > 1e-4 {
			t.Errorf("x[%d] = %v, want 1", i, res.X[i])
		}
	}
}

func TestMinimizeRosenbrock10D(t *testing.T) {
	x0 := make([]float64, 10)
	for i := range x0 {
		x0[i] = -1
	}
	res, err := Minimize(rosenbrock, x0, Options{MaxIter: 2000, History: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-6 {
		t.Errorf("10-D Rosenbrock F = %v, want ~0", res.F)
	}
}

func TestMinimizeAtOptimum(t *testing.T) {
	obj := quadratic([]float64{1, 1}, []float64{0, 0})
	res, err := Minimize(obj, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("at-optimum run = %+v", res)
	}
}

func TestMinimizeBeatsGradientDescentOnIllConditioned(t *testing.T) {
	// Strongly ill-conditioned quadratic: L-BFGS should converge in few
	// iterations where plain gradient descent crawls.
	obj := quadratic([]float64{1, 1000}, []float64{1, 1})
	res, err := Minimize(obj, []float64{-5, 4}, Options{MaxIter: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-8 {
		t.Errorf("ill-conditioned F = %v after %d iters", res.F, res.Iterations)
	}
}

func TestMinimizeConvergesFromRandomStarts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := make([]float64, n)
		b := make([]float64, n)
		x0 := make([]float64, n)
		for i := range c {
			c[i] = 0.1 + rng.Float64()*10
			b[i] = rng.Float64()*20 - 10
			x0[i] = rng.Float64()*20 - 10
		}
		res, err := Minimize(quadratic(c, b), x0, Options{MaxIter: 200})
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(res.X[i]-b[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStepperConvergesOnQuadratic(t *testing.T) {
	obj := quadratic([]float64{2, 0.5, 5}, []float64{1, -3, 2})
	st := NewStepper(8, 3)
	x := []float64{10, 10, 10}
	for i := 0; i < 200; i++ {
		f, g := obj(x)
		x = st.Step(x, f, g)
	}
	want := []float64{1, -3, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestStepperNoisyGradient(t *testing.T) {
	// With zero-mean noise on the gradient the stepper should still
	// land near the optimum (this mimics MCMC-estimated gradients).
	obj := quadratic([]float64{1, 1}, []float64{4, -4})
	rng := rand.New(rand.NewSource(9))
	st := NewStepper(5, 2)
	st.StepSize = 0.5
	st.MaxMove = 0.5
	x := []float64{0, 0}
	for i := 0; i < 400; i++ {
		f, g := obj(x)
		for j := range g {
			g[j] += rng.NormFloat64() * 0.05
		}
		x = st.Step(x, f, g)
	}
	for i, want := range []float64{4, -4} {
		if math.Abs(x[i]-want) > 0.3 {
			t.Errorf("noisy x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestStepperMaxMoveCap(t *testing.T) {
	st := NewStepper(4, 2)
	st.MaxMove = 0.1
	x := []float64{0, 0}
	g := []float64{100, -50}
	next := st.Step(x, 0, g)
	for i := range next {
		if math.Abs(next[i]-x[i]) > 0.1+1e-12 {
			t.Errorf("move %v exceeds cap", next[i]-x[i])
		}
	}
}

func TestHistorySkipsBadCurvature(t *testing.T) {
	h := newHistory(4, 2)
	h.push([]float64{1, 0}, []float64{-1, 0}) // s·y < 0: skipped
	if len(h.s) != 0 {
		t.Errorf("negative curvature pair retained")
	}
	h.push([]float64{1, 0}, []float64{1, 0})
	if len(h.s) != 1 {
		t.Errorf("valid pair dropped")
	}
	// Rolling window keeps at most m pairs.
	for i := 0; i < 10; i++ {
		h.push([]float64{1, float64(i)}, []float64{1, float64(i)})
	}
	if len(h.s) != 4 {
		t.Errorf("history size = %d, want 4", len(h.s))
	}
}

func TestDirectionIsDescentWithoutHistory(t *testing.T) {
	h := newHistory(4, 3)
	g := []float64{1, -2, 3}
	d := h.direction(g)
	if dot(d, g) >= 0 {
		t.Errorf("direction not descent: %v", d)
	}
	for i := range g {
		if d[i] != -g[i] {
			t.Errorf("no-history direction should be -g, got %v", d)
		}
	}
}

func TestInfNormDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 5, 2}
	if got := InfNormDiff(a, b); got != 3 {
		t.Errorf("InfNormDiff = %v, want 3", got)
	}
	if got := InfNormDiff(a, a); got != 0 {
		t.Errorf("InfNormDiff identical = %v", got)
	}
}

func TestLineSearchFailure(t *testing.T) {
	// An objective that always increases along any direction cannot
	// satisfy Armijo: expect ErrLineSearch (gradient pushes uphill).
	bad := func(x []float64) (float64, []float64) {
		return math.NaN(), []float64{1}
	}
	_, err := Minimize(bad, []float64{0}, Options{MaxIter: 3})
	if err == nil {
		t.Errorf("expected line search failure")
	}
}
