// Package lbfgs implements the limited-memory BFGS quasi-Newton method
// (Liu & Nocedal, 1989), the optimiser the paper uses to update C2MN
// weights inside the alternate learning loop (Algorithm 1, line 17).
//
// Two entry points are provided:
//
//   - Minimize runs a full optimisation of a deterministic objective
//     with backtracking Armijo line search. It is used in tests and by
//     baselines with closed-form objectives.
//   - Stepper supports the paper's usage, where the objective value and
//     gradient are *estimates* recomputed once per outer iteration
//     (MCMC approximations, Eq. 8–9): each Step consumes one
//     (value, gradient) evaluation and returns the next iterate, while
//     maintaining the limited-memory curvature history.
package lbfgs

import (
	"errors"
	"math"
)

// Options configures Minimize.
type Options struct {
	// History is the number of correction pairs kept (m). Default 8.
	History int
	// MaxIter bounds the number of outer iterations. Default 100.
	MaxIter int
	// GradTol stops when the gradient inf-norm falls below it. Default 1e-8.
	GradTol float64
	// StepTol stops when the iterate inf-norm change falls below it. Default 1e-12.
	StepTol float64
}

func (o *Options) fill() {
	if o.History <= 0 {
		o.History = 8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	if o.StepTol <= 0 {
		o.StepTol = 1e-12
	}
}

// Objective evaluates a function and its gradient at x. The returned
// gradient must be a fresh slice (it is retained).
type Objective func(x []float64) (fx float64, grad []float64)

// Result reports the outcome of Minimize.
type Result struct {
	X          []float64
	F          float64
	Iterations int
	Converged  bool
}

// ErrLineSearch is returned when no acceptable step can be found; the
// best iterate so far is still returned in Result.
var ErrLineSearch = errors.New("lbfgs: line search failed")

// Minimize runs L-BFGS from x0 and returns the best iterate found.
func Minimize(obj Objective, x0 []float64, opts Options) (Result, error) {
	opts.fill()
	n := len(x0)
	x := append([]float64(nil), x0...)
	fx, g := obj(x)
	hist := newHistory(opts.History, n)
	res := Result{X: x, F: fx}

	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		if infNorm(g) < opts.GradTol {
			res.Converged = true
			return res, nil
		}
		dir := hist.direction(g)
		// Ensure a descent direction; fall back to steepest descent.
		if dot(dir, g) >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
		}
		step, fNew, xNew, gNew, ok := lineSearch(obj, x, fx, g, dir)
		if !ok {
			return res, ErrLineSearch
		}
		_ = step
		s := make([]float64, n)
		y := make([]float64, n)
		maxMove := 0.0
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
			if m := math.Abs(s[i]); m > maxMove {
				maxMove = m
			}
		}
		hist.push(s, y)
		x, fx, g = xNew, fNew, gNew
		res.X, res.F = x, fx
		if maxMove < opts.StepTol {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// lineSearch finds a step satisfying the strong Wolfe conditions via
// bracketing and zoom (Nocedal & Wright, Algorithms 3.5 and 3.6).
// Enforcing the curvature condition keeps the (s, y) pairs useful for
// the limited-memory Hessian approximation.
func lineSearch(obj Objective, x []float64, fx float64, g, dir []float64) (step, fNew float64, xNew, gNew []float64, ok bool) {
	const (
		c1       = 1e-4
		c2       = 0.9
		alphaMax = 1e4
		maxIter  = 30
	)
	slope := dot(g, dir)
	if slope >= 0 || math.IsNaN(slope) {
		return 0, 0, nil, nil, false
	}
	eval := func(alpha float64) (float64, []float64, []float64, float64) {
		xt := make([]float64, len(x))
		for i := range x {
			xt[i] = x[i] + alpha*dir[i]
		}
		ft, gt := obj(xt)
		return ft, gt, xt, dot(gt, dir)
	}
	zoom := func(lo, fLo float64, hi float64) (float64, float64, []float64, []float64, bool) {
		for it := 0; it < maxIter; it++ {
			alpha := (lo + hi) / 2
			ft, gt, xt, dt := eval(alpha)
			switch {
			case math.IsNaN(ft) || ft > fx+c1*alpha*slope || ft >= fLo:
				hi = alpha
			case math.Abs(dt) <= -c2*slope:
				return alpha, ft, xt, gt, true
			case dt*(hi-lo) >= 0:
				hi = lo
				fallthrough
			default:
				lo, fLo = alpha, ft
			}
			if math.Abs(hi-lo) < 1e-16 {
				if ft <= fx+c1*alpha*slope && !math.IsNaN(ft) {
					return alpha, ft, xt, gt, true
				}
				return 0, 0, nil, nil, false
			}
		}
		// Accept the best sufficient-decrease point found.
		alpha := (lo + hi) / 2
		ft, gt, xt, _ := eval(alpha)
		if !math.IsNaN(ft) && ft <= fx+c1*alpha*slope {
			return alpha, ft, xt, gt, true
		}
		return 0, 0, nil, nil, false
	}

	alphaPrev, fPrev := 0.0, fx
	alpha := 1.0
	for it := 0; it < maxIter; it++ {
		ft, gt, xt, dt := eval(alpha)
		if math.IsNaN(ft) || ft > fx+c1*alpha*slope || (it > 0 && ft >= fPrev) {
			return zoom(alphaPrev, fPrev, alpha)
		}
		if math.Abs(dt) <= -c2*slope {
			return alpha, ft, xt, gt, true
		}
		if dt >= 0 {
			return zoom(alpha, ft, alphaPrev)
		}
		alphaPrev, fPrev = alpha, ft
		alpha *= 2
		if alpha > alphaMax {
			return alphaPrev, ft, xt, gt, true
		}
	}
	return 0, 0, nil, nil, false
}

// Stepper is the incremental interface used by Algorithm 1: the caller
// supplies one (possibly stochastic) objective value and gradient per
// step, and receives the next iterate computed from the two-loop
// recursion over the retained curvature pairs. Steps whose curvature
// information is unusable (sᵀy ≤ 0) are still taken but not recorded,
// which keeps the inverse-Hessian approximation positive definite.
type Stepper struct {
	hist *history
	// StepSize scales the quasi-Newton direction; the MCMC-estimated
	// gradients are noisy, so a damped step keeps learning stable.
	StepSize float64
	// MaxMove caps the inf-norm of a single update.
	MaxMove float64

	prevX []float64
	prevG []float64
	has   bool
}

// NewStepper returns a Stepper with history size m for dimension n.
func NewStepper(m, n int) *Stepper {
	if m <= 0 {
		m = 8
	}
	return &Stepper{hist: newHistory(m, n), StepSize: 1.0, MaxMove: 1.0}
}

// Step consumes the gradient at x and returns the next iterate. The
// objective value is accepted for interface symmetry and future line
// search use; the damped two-loop direction is applied directly.
func (st *Stepper) Step(x []float64, _ float64, grad []float64) []float64 {
	n := len(x)
	if st.has {
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			s[i] = x[i] - st.prevX[i]
			y[i] = grad[i] - st.prevG[i]
		}
		st.hist.push(s, y)
	}
	dir := st.hist.direction(grad)
	if dot(dir, grad) >= 0 {
		for i := range dir {
			dir[i] = -grad[i]
		}
	}
	// Damp and cap the move.
	scale := st.StepSize
	maxc := 0.0
	for i := range dir {
		if a := math.Abs(dir[i]) * scale; a > maxc {
			maxc = a
		}
	}
	if st.MaxMove > 0 && maxc > st.MaxMove {
		scale *= st.MaxMove / maxc
	}
	next := make([]float64, n)
	for i := range x {
		next[i] = x[i] + scale*dir[i]
	}
	st.prevX = append(st.prevX[:0], x...)
	st.prevG = append(st.prevG[:0], grad...)
	st.has = true
	return next
}

// history keeps the m most recent (s, y) pairs and evaluates the
// two-loop recursion.
type history struct {
	m     int
	s, y  [][]float64
	rho   []float64
	alpha []float64
}

func newHistory(m, n int) *history {
	_ = n
	return &history{m: m}
}

func (h *history) push(s, y []float64) {
	sy := dot(s, y)
	if sy <= 1e-12 {
		return // skip non-curvature pairs
	}
	if len(h.s) == h.m {
		h.s = h.s[1:]
		h.y = h.y[1:]
		h.rho = h.rho[1:]
	}
	h.s = append(h.s, s)
	h.y = append(h.y, y)
	h.rho = append(h.rho, 1/sy)
}

// direction returns the L-BFGS descent direction -H·g via the two-loop
// recursion. With no history it returns -g.
func (h *history) direction(g []float64) []float64 {
	q := append([]float64(nil), g...)
	k := len(h.s)
	if cap(h.alpha) < k {
		h.alpha = make([]float64, k)
	}
	alpha := h.alpha[:k]
	for i := k - 1; i >= 0; i-- {
		alpha[i] = h.rho[i] * dot(h.s[i], q)
		axpy(q, -alpha[i], h.y[i])
	}
	if k > 0 {
		// Initial Hessian scaling γ = sᵀy / yᵀy of the newest pair.
		last := k - 1
		gamma := dot(h.s[last], h.y[last]) / dot(h.y[last], h.y[last])
		for i := range q {
			q[i] *= gamma
		}
	}
	for i := 0; i < k; i++ {
		beta := h.rho[i] * dot(h.y[i], q)
		axpy(q, alpha[i]-beta, h.s[i])
	}
	for i := range q {
		q[i] = -q[i]
	}
	return q
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// InfNormDiff returns ‖a−b‖∞, the Chebyshev distance Algorithm 1 uses
// as its convergence criterion (line 18).
func InfNormDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
