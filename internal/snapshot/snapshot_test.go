package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/query"
	"c2mn/internal/seq"
)

func sampleFile() *File {
	streams := []seq.StreamState{
		{
			Key:      seq.StreamKey{Venue: "north", Object: "a"},
			Fragment: 2,
			Records: []seq.Record{
				{Loc: indoor.Loc(1, 2, 0), T: 10},
				{Loc: indoor.Loc(3, 4, 1), T: 20},
			},
		},
		{Key: seq.StreamKey{Venue: "north", Object: "b"}, Fragment: 0},
	}
	ix := query.NewIndex(600)
	ix.Add(seq.MSSequence{ObjectID: "a#0", Semantics: []seq.MSemantics{
		{Region: 3, Start: 0, End: 90, Event: seq.Stay},
		{Region: 5, Start: 90, End: 120, Event: seq.Pass},
	}})
	ix.Add(seq.MSSequence{ObjectID: "b#0", Semantics: []seq.MSemantics{
		{Region: 5, Start: 100, End: 400, Event: seq.Stay},
	}})
	return &File{
		Header: Header{
			Venue:       "north",
			SpaceHash:   "spacehash",
			ModelHash:   "modelhash",
			CreatedUnix: 1234,
		},
		Engine:  EngineSection{Eta: 300, Psi: 60, Retention: 600, FedRecords: 17, EmittedSequences: 2},
		Streams: EncodeStreams(streams),
		Index:   EncodeIndex(ix.SnapshotState()),
	}
}

// TestWriteReadRoundTrip pins byte-level fidelity of the whole format:
// header identity, sections, and the seq/query state conversions.
func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != Format || got.Version != FormatVersion {
		t.Fatalf("header identity = %q v%d", got.Format, got.Version)
	}
	if got.Venue != "north" || got.SpaceHash != "spacehash" || got.ModelHash != "modelhash" || got.CreatedUnix != 1234 {
		t.Fatalf("header fields = %+v", got.Header)
	}
	if got.Engine != f.Engine {
		t.Fatalf("engine section = %+v, want %+v", got.Engine, f.Engine)
	}
	if !reflect.DeepEqual(got.Streams, f.Streams) {
		t.Fatalf("streams = %+v, want %+v", got.Streams, f.Streams)
	}
	if !reflect.DeepEqual(got.Index, f.Index) {
		t.Fatalf("index = %+v, want %+v", got.Index, f.Index)
	}

	// The decoded sections convert back to working state.
	states := DecodeStreams(got.Streams)
	if len(states) != 2 || states[0].Fragment != 2 || len(states[0].Records) != 2 ||
		states[0].Records[1].Loc.Floor != 1 || states[0].Records[1].T != 20 {
		t.Fatalf("decoded streams = %+v", states)
	}
	ixState := DecodeIndex(got.Index)
	ix, err := query.RestoreIndex(ixState)
	if err != nil {
		t.Fatal(err)
	}
	if seqs, sems := ix.Len(); seqs != 2 || sems != 3 {
		t.Fatalf("restored index Len = (%d, %d), want (2, 3)", seqs, sems)
	}
}

// TestReadRejectsTruncation is the no-torn-snapshots contract: every
// prefix of a valid snapshot fails with a typed error — never a panic,
// never a silently partial restore.
func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleFile()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, n := range []int{0, 1, 10, len(whole) / 2, len(whole) - 1} {
		_, err := Read(bytes.NewReader(whole[:n]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(whole))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFormat) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt/ErrFormat", n, err)
		}
	}
	// A flipped body byte fails the checksum.
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-2] ^= 0xff
	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want ErrCorrupt", err)
	}

	// A corrupt header promising an absurd body length must fail as a
	// short read — not attempt the allocation (which would OOM-crash
	// the process instead of starting the venue cold).
	huge := fmt.Sprintf("{\"format\":%q,\"version\":%d,\"body_len\":9000000000000000000}\n{}", Format, FormatVersion)
	if _, err := Read(strings.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge body_len: err = %v, want ErrCorrupt", err)
	}
	negative := fmt.Sprintf("{\"format\":%q,\"version\":%d,\"body_len\":-1}\n", Format, FormatVersion)
	if _, err := Read(strings.NewReader(negative)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative body_len: err = %v, want ErrCorrupt", err)
	}
}

// TestReadRejectsForeignAndFutureFiles pins the typed format/version
// guards.
func TestReadRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"format\":\"other\"}\n{}")); !errors.Is(err, ErrFormat) {
		t.Fatalf("foreign format: err = %v, want ErrFormat", err)
	}
	if _, err := Read(strings.NewReader("not json at all\n")); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage header: err = %v, want ErrFormat", err)
	}
	future := fmt.Sprintf("{\"format\":%q,\"version\":%d}\n{}", Format, FormatVersion+1)
	if _, err := Read(strings.NewReader(future)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

// TestWriteFileAtomicRename: a successful WriteFile leaves exactly the
// snapshot (no temp residue), and overwriting keeps the file readable
// at every point.
func TestWriteFileAtomicRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "north.c2mnsnap")
	f := sampleFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Venue != "north" {
		t.Fatalf("read-back venue = %q", got.Venue)
	}
	// Overwrite with changed counters; the new content replaces the old.
	f.Engine.FedRecords = 99
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Engine.FedRecords != 99 {
		t.Fatalf("overwrite not visible: fed = %d", got.Engine.FedRecords)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp residue left behind: %v", entries)
	}
	// A missing file surfaces as os.ErrNotExist for callers to skip.
	if _, err := ReadFile(filepath.Join(dir, "missing.c2mnsnap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}
}
