// Package snapshot defines the c2mn-snapshot file format: the durable
// form of one venue shard's live serving state — the open η-gap stream
// fragments and the time-bucketed top-k query index — so a restarted
// server resumes its sliding windows instead of serving cold.
//
// A snapshot file is two parts:
//
//   - a one-line JSON header carrying the format name and version, the
//     venue identity (venue ID plus hashes of the venue's Space and
//     model serialisations, so a snapshot cannot be restored into a
//     venue it was not captured from), and the body's length and
//     CRC-32C;
//   - a JSON body with three sections: the engine counters, the open
//     stream fragments, and the query-index state.
//
// The header-first layout means version and identity checks never
// decode an incompatible body, and the length + checksum reject a
// truncated or torn file with a typed error instead of misreading it.
// Files are written atomically (temp file, fsync, rename, directory
// fsync) by WriteFile, so a crash mid-write leaves either the previous
// snapshot or none — never a partial one.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"c2mn/internal/indoor"
	"c2mn/internal/query"
	"c2mn/internal/seq"
)

// Format identity. Version 1 is the initial format.
const (
	// Format names the file type in the header.
	Format = "c2mn-snapshot"
	// FormatVersion is the version this build writes.
	FormatVersion = 1
)

// Typed failure modes, matched by callers with errors.Is.
var (
	// ErrFormat is returned for files that are not c2mn snapshots.
	ErrFormat = errors.New("snapshot: not a c2mn snapshot file")
	// ErrVersion is returned for snapshots written by a newer format
	// version than this build understands.
	ErrVersion = errors.New("snapshot: unsupported snapshot format version")
	// ErrCorrupt is returned for truncated or corrupted snapshots: a
	// body shorter than the header promises, a checksum mismatch, or
	// undecodable section JSON.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated snapshot")
)

// Header is the first line of a snapshot file. It is self-contained:
// compatibility and identity are decidable without reading the body.
type Header struct {
	Format      string `json:"format"`
	Version     int    `json:"version"`
	Venue       string `json:"venue"`
	SpaceHash   string `json:"space_hash"`
	ModelHash   string `json:"model_hash"`
	CreatedUnix int64  `json:"created_unix"`
	BodyLen     int64  `json:"body_len"`
	BodyCRC     uint32 `json:"body_crc32c"`
}

// File is one venue's decoded snapshot: the header plus the three
// body sections.
type File struct {
	Header
	Engine  EngineSection
	Streams []StreamSection
	Index   IndexSection
}

// EngineSection carries the engine's preprocessing configuration (the
// guard against restoring into a differently-configured engine) and
// its monotonic pipeline counters.
type EngineSection struct {
	Eta              float64 `json:"eta"`
	Psi              float64 `json:"psi"`
	Retention        float64 `json:"retention"`
	FedRecords       int64   `json:"fed_records"`
	EmittedSequences int64   `json:"emitted_sequences"`
	// FeedBatches counts the streaming path's pooled-state
	// acquisitions (coalesced micro-batches). omitempty keeps a
	// zero-batch snapshot byte-identical to the pre-batching format,
	// and pre-batching snapshots restore the counter as 0.
	FeedBatches int64 `json:"feed_batches,omitempty"`
	// Query-cache observability counters (hits/misses of the
	// generation-keyed result cache, HTTP 304 revalidations), captured
	// so a warm restart reports continuous stats. Same omitempty
	// compatibility story as FeedBatches.
	QueryCacheHits          int64 `json:"query_cache_hits,omitempty"`
	QueryCacheMisses        int64 `json:"query_cache_misses,omitempty"`
	QueryCacheRevalidations int64 `json:"query_cache_revalidations,omitempty"`
}

// StreamSection is one open stream: its key, the next fragment number
// and the buffered records of the open fragment as [x, y, floor, t]
// tuples (the dataset wire schema).
type StreamSection struct {
	Venue    string       `json:"venue"`
	Object   string       `json:"object"`
	Fragment int          `json:"fragment"`
	Records  [][4]float64 `json:"records,omitempty"`
}

// IndexSection is the query-index state: bucket geometry, eviction
// clock and the retained sequences in insertion order, each sequence's
// semantics as [region, start, end, event] tuples.
type IndexSection struct {
	Retention float64 `json:"retention"`
	BaseWidth float64 `json:"base_width"`
	Width     float64 `json:"width"`
	MaxEnd    float64 `json:"max_end"`
	HasMax    bool    `json:"has_max"`
	// Generation is the store's content-mutation counter at capture
	// time; RestoreIndex jumps past it so validators published by the
	// captured process can never collide with the restored one's.
	// omitempty keeps generation-zero snapshots byte-identical to the
	// pre-generation format.
	Generation uint64          `json:"generation,omitempty"`
	Sequences  []IndexSequence `json:"sequences"`
}

// IndexSequence is one retained ms-sequence.
type IndexSequence struct {
	Object    string       `json:"object"`
	Semantics [][4]float64 `json:"semantics"`
}

// body is the on-disk section layout after the header line.
type body struct {
	Engine  EngineSection   `json:"engine"`
	Streams []StreamSection `json:"streams"`
	Index   IndexSection    `json:"index"`
}

// EncodeStreams converts captured stream states to their wire form.
func EncodeStreams(states []seq.StreamState) []StreamSection {
	out := make([]StreamSection, 0, len(states))
	for _, st := range states {
		s := StreamSection{Venue: st.Key.Venue, Object: st.Key.Object, Fragment: st.Fragment}
		for _, r := range st.Records {
			s.Records = append(s.Records, [4]float64{r.Loc.X, r.Loc.Y, float64(r.Loc.Floor), r.T})
		}
		out = append(out, s)
	}
	return out
}

// DecodeStreams converts wire stream sections back to stream states.
func DecodeStreams(sections []StreamSection) []seq.StreamState {
	out := make([]seq.StreamState, 0, len(sections))
	for _, s := range sections {
		st := seq.StreamState{
			Key:      seq.StreamKey{Venue: s.Venue, Object: s.Object},
			Fragment: s.Fragment,
		}
		for _, r := range s.Records {
			st.Records = append(st.Records, seq.Record{
				Loc: indoor.Loc(r[0], r[1], int(r[2])),
				T:   r[3],
			})
		}
		out = append(out, st)
	}
	return out
}

// EncodeIndex converts a captured index state to its wire form.
func EncodeIndex(st query.IndexState) IndexSection {
	out := IndexSection{
		Retention:  st.Retention,
		BaseWidth:  st.BaseWidth,
		Width:      st.Width,
		MaxEnd:     st.MaxEnd,
		HasMax:     st.HasMax,
		Generation: st.Generation,
	}
	for _, ms := range st.Seqs {
		is := IndexSequence{Object: ms.ObjectID}
		for _, m := range ms.Semantics {
			is.Semantics = append(is.Semantics, [4]float64{float64(m.Region), m.Start, m.End, float64(m.Event)})
		}
		out.Sequences = append(out.Sequences, is)
	}
	return out
}

// DecodeIndex converts a wire index section back to an index state.
func DecodeIndex(sec IndexSection) query.IndexState {
	st := query.IndexState{
		Retention:  sec.Retention,
		BaseWidth:  sec.BaseWidth,
		Width:      sec.Width,
		MaxEnd:     sec.MaxEnd,
		HasMax:     sec.HasMax,
		Generation: sec.Generation,
	}
	for _, is := range sec.Sequences {
		ms := seq.MSSequence{ObjectID: is.Object}
		for _, m := range is.Semantics {
			ms.Semantics = append(ms.Semantics, seq.MSemantics{
				Region: indoor.RegionID(m[0]),
				Start:  m[1],
				End:    m[2],
				Event:  seq.Event(m[3]),
			})
		}
		st.Seqs = append(st.Seqs, ms)
	}
	return st
}

// castagnoli is the CRC-32C table used for the body checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Write serialises the snapshot to w: header line first, body after.
// The file's BodyLen/BodyCRC fields are computed here; values set by
// the caller are ignored.
func Write(w io.Writer, f *File) error {
	bodyBuf, err := json.Marshal(body{Engine: f.Engine, Streams: f.Streams, Index: f.Index})
	if err != nil {
		return fmt.Errorf("snapshot: encoding body: %w", err)
	}
	h := f.Header
	h.Format = Format
	h.Version = FormatVersion
	h.BodyLen = int64(len(bodyBuf))
	h.BodyCRC = crc32.Checksum(bodyBuf, castagnoli)
	headBuf, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("snapshot: encoding header: %w", err)
	}
	if _, err := w.Write(append(headBuf, '\n')); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(bodyBuf); err != nil {
		return fmt.Errorf("snapshot: writing body: %w", err)
	}
	return nil
}

// Read deserialises a snapshot written by Write. Files that are not
// c2mn snapshots fail with ErrFormat, future format versions with
// ErrVersion, and truncated or corrupted files with ErrCorrupt — the
// header is always judged before the body is decoded.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	headLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: unterminated header: %v", ErrCorrupt, err)
	}
	var h Header
	if err := json.Unmarshal(headLine, &h); err != nil {
		return nil, fmt.Errorf("%w: undecodable header: %v", ErrFormat, err)
	}
	if h.Format != Format {
		return nil, fmt.Errorf("%w: file has format %q, want %q", ErrFormat, h.Format, Format)
	}
	if h.Version > FormatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this build reads <= %d",
			ErrVersion, h.Version, FormatVersion)
	}
	if h.BodyLen < 0 {
		return nil, fmt.Errorf("%w: negative body length %d", ErrCorrupt, h.BodyLen)
	}
	// The promised length is untrusted (only the body is checksummed):
	// read incrementally up to it rather than pre-allocating it, so a
	// corrupt header claiming an absurd body_len fails with the short
	// read below instead of an out-of-memory crash.
	bodyBuf, err := io.ReadAll(io.LimitReader(br, h.BodyLen))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", ErrCorrupt, err)
	}
	if int64(len(bodyBuf)) != h.BodyLen {
		return nil, fmt.Errorf("%w: body truncated (%d bytes promised, %d present)", ErrCorrupt, h.BodyLen, len(bodyBuf))
	}
	if crc := crc32.Checksum(bodyBuf, castagnoli); crc != h.BodyCRC {
		return nil, fmt.Errorf("%w: body checksum %08x, header says %08x", ErrCorrupt, crc, h.BodyCRC)
	}
	var b body
	dec := json.NewDecoder(bytes.NewReader(bodyBuf))
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: undecodable body: %v", ErrCorrupt, err)
	}
	return &File{Header: h, Engine: b.Engine, Streams: b.Streams, Index: b.Index}, nil
}

// WriteFile writes the snapshot to path atomically: the bytes go to a
// temporary file in the same directory, are fsynced, and the file is
// renamed over path, followed by a directory fsync. A crash at any
// point leaves either the previous snapshot or none — a reader can
// never observe a torn file.
func WriteFile(path string, f *File) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, f); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	// Persist the rename itself: fsync the directory (best-effort on
	// filesystems that reject directory fsync).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads a snapshot file from path; see Read for the error
// contract. A missing file surfaces as os.ErrNotExist.
func ReadFile(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	f, err := Read(fd)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
