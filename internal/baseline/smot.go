package baseline

import (
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// SMoT labels events by thresholding the movement speed (below the
// threshold = stay) and regions by nearest-neighbour matching,
// following the paper's description of Alvares et al. [2] adapted to
// record-level labeling. Train grid-searches the speed threshold that
// maximises event accuracy on the training data.
type SMoT struct {
	// Threshold is the stay/pass speed boundary in m/s; Train
	// overwrites it unless FixedThreshold is set.
	Threshold float64
	// FixedThreshold skips tuning.
	FixedThreshold bool

	space   *indoor.Space
	trained bool
}

// NewSMoT returns an untuned SMoT.
func NewSMoT() *SMoT { return &SMoT{Threshold: 0.9} }

// Name implements Method.
func (m *SMoT) Name() string { return "SMoT" }

// Train implements Method: tunes the speed threshold on the labeled
// events.
func (m *SMoT) Train(space *indoor.Space, data []seq.LabeledSequence) error {
	m.space = space
	m.trained = true
	if m.FixedThreshold {
		return nil
	}
	best, bestOK := m.Threshold, -1
	for _, th := range []float64{0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.1, 1.4, 1.7, 2.0, 2.5} {
		ok := 0
		for i := range data {
			p := &data[i].P
			for j := 0; j < p.Len(); j++ {
				e := seq.Pass
				if speedAt(p, j) < th {
					e = seq.Stay
				}
				if e == data[i].Labels.Events[j] {
					ok++
				}
			}
		}
		if ok > bestOK {
			best, bestOK = th, ok
		}
	}
	m.Threshold = best
	return nil
}

// Annotate implements Method.
func (m *SMoT) Annotate(p *seq.PSequence) (seq.Labels, error) {
	if err := requireTrained(m.trained, m.Name()); err != nil {
		return seq.Labels{}, err
	}
	labels := seq.Labels{
		Regions: nearestRegions(m.space, p),
		Events:  make([]seq.Event, p.Len()),
	}
	for i := 0; i < p.Len(); i++ {
		if speedAt(p, i) < m.Threshold {
			labels.Events[i] = seq.Stay
		} else {
			labels.Events[i] = seq.Pass
		}
	}
	return labels, nil
}
