package baseline

import (
	"math"

	"c2mn/internal/cluster"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// SAP is the layered semantic annotation platform of Yan et al. [26]
// as described in §V-A: first segment the sequence into stay and pass
// parts, then label each stay segment with one region by decoding an
// HMM whose observation probability is the overlap between the
// segment's Gaussian location distribution and the region; pass
// records take their nearest region.
//
// Two segmentation algorithms are supported, giving the paper's SAPDV
// (dynamic velocity) and SAPDA (density area) variants.
type SAP struct {
	// DensityArea selects DA segmentation; false means DV.
	DensityArea bool
	// VelFactor is the DV dynamic threshold: stay when speed <
	// VelFactor · (sequence average speed). Train tunes it.
	VelFactor float64
	// MinStayDur is the DV minimum stay-segment duration, seconds.
	MinStayDur float64
	// Cluster holds the DA st-DBSCAN parameters.
	Cluster cluster.Params
	// GammaTrans scales the distance-based segment transition
	// probabilities.
	GammaTrans float64

	space   *indoor.Space
	trained bool
}

// NewSAPDV returns the dynamic-velocity variant.
func NewSAPDV() *SAP {
	return &SAP{
		VelFactor:  0.7,
		MinStayDur: 30,
		GammaTrans: 0.05,
	}
}

// NewSAPDA returns the density-area variant.
func NewSAPDA() *SAP {
	return &SAP{
		DensityArea: true,
		Cluster:     cluster.Params{EpsS: 8, EpsT: 60, MinPts: 4},
		GammaTrans:  0.05,
	}
}

// Name implements Method.
func (m *SAP) Name() string {
	if m.DensityArea {
		return "SAPDA"
	}
	return "SAPDV"
}

// Train implements Method: DV tunes its velocity factor against the
// training events; DA needs no fitting.
func (m *SAP) Train(space *indoor.Space, data []seq.LabeledSequence) error {
	m.space = space
	m.trained = true
	if m.DensityArea {
		return nil
	}
	best, bestOK := m.VelFactor, -1
	for _, vf := range []float64{0.3, 0.5, 0.7, 0.9, 1.1, 1.3} {
		ok := 0
		for i := range data {
			stay := m.segmentDV(&data[i].P, vf)
			for j, isStay := range stay {
				e := seq.Pass
				if isStay {
					e = seq.Stay
				}
				if e == data[i].Labels.Events[j] {
					ok++
				}
			}
		}
		if ok > bestOK {
			best, bestOK = vf, ok
		}
	}
	m.VelFactor = best
	return nil
}

// segmentDV marks stay records via the dynamic velocity threshold and
// the minimum-duration filter.
func (m *SAP) segmentDV(p *seq.PSequence, velFactor float64) []bool {
	n := p.Len()
	stay := make([]bool, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += speedAt(p, i)
	}
	if n == 0 {
		return stay
	}
	threshold := velFactor * sum / float64(n)
	for i := 0; i < n; i++ {
		stay[i] = speedAt(p, i) < threshold
	}
	// Enforce minimum stay duration.
	for i := 0; i < n; {
		if !stay[i] {
			i++
			continue
		}
		j := i
		for j+1 < n && stay[j+1] {
			j++
		}
		if p.Records[j].T-p.Records[i].T < m.MinStayDur {
			for x := i; x <= j; x++ {
				stay[x] = false
			}
		}
		i = j + 1
	}
	return stay
}

// segmentDA marks stay records via density clustering.
func (m *SAP) segmentDA(p *seq.PSequence) ([]bool, error) {
	n := p.Len()
	pts := make([]cluster.Point, n)
	for i, rec := range p.Records {
		pts[i] = cluster.Point{X: rec.Loc.X, Y: rec.Loc.Y, Floor: rec.Loc.Floor, T: rec.T}
	}
	res, err := cluster.Run(pts, m.Cluster)
	if err != nil {
		return nil, err
	}
	stay := make([]bool, n)
	for i, tag := range res.Tag {
		stay[i] = tag != cluster.Noise
	}
	return stay, nil
}

// Annotate implements Method.
func (m *SAP) Annotate(p *seq.PSequence) (seq.Labels, error) {
	if err := requireTrained(m.trained, m.Name()); err != nil {
		return seq.Labels{}, err
	}
	n := p.Len()
	labels := seq.NewLabels(n)
	var stay []bool
	var err error
	if m.DensityArea {
		stay, err = m.segmentDA(p)
		if err != nil {
			return seq.Labels{}, err
		}
	} else {
		stay = m.segmentDV(p, m.VelFactor)
	}
	for i := 0; i < n; i++ {
		if stay[i] {
			labels.Events[i] = seq.Stay
		} else {
			labels.Events[i] = seq.Pass
		}
	}

	// Collect stay segments.
	type segment struct{ a, b int }
	var segs []segment
	for i := 0; i < n; {
		if !stay[i] {
			i++
			continue
		}
		j := i
		for j+1 < n && stay[j+1] {
			j++
		}
		segs = append(segs, segment{i, j})
		i = j + 1
	}

	// Pass records: nearest region.
	for i := 0; i < n; i++ {
		if !stay[i] {
			labels.Regions[i] = m.space.NearestRegion(p.Records[i].Loc)
		}
	}
	if len(segs) == 0 {
		return labels, nil
	}

	// Stay segments: Viterbi over regions with Gaussian-overlap
	// observations and distance-decayed transitions.
	numR := m.space.NumRegions()
	obsLog := make([][]float64, len(segs))
	for si, sg := range segs {
		mean, sigma := segmentGaussian(p, sg.a, sg.b)
		radius := math.Max(2*sigma, 3)
		row := make([]float64, numR)
		for r := 0; r < numR; r++ {
			ov := m.space.UncertaintyOverlap(mean, radius, indoor.RegionID(r))
			row[r] = math.Log(ov + 1e-9)
		}
		obsLog[si] = row
	}
	prev := make([]float64, numR)
	cur := make([]float64, numR)
	back := make([][]int32, len(segs))
	copy(prev, obsLog[0])
	for si := 1; si < len(segs); si++ {
		back[si] = make([]int32, numR)
		for r := 0; r < numR; r++ {
			bestV := math.Inf(-1)
			bestP := 0
			for q := 0; q < numR; q++ {
				v := prev[q] - m.GammaTrans*m.space.RegionDist(indoor.RegionID(q), indoor.RegionID(r))
				if v > bestV {
					bestV, bestP = v, q
				}
			}
			cur[r] = bestV + obsLog[si][r]
			back[si][r] = int32(bestP)
		}
		prev, cur = cur, prev
	}
	bestR := 0
	bestV := math.Inf(-1)
	for r := 0; r < numR; r++ {
		if prev[r] > bestV {
			bestV, bestR = prev[r], r
		}
	}
	segRegion := make([]int, len(segs))
	segRegion[len(segs)-1] = bestR
	for si := len(segs) - 1; si > 0; si-- {
		segRegion[si-1] = int(back[si][segRegion[si]])
	}
	for si, sg := range segs {
		for i := sg.a; i <= sg.b; i++ {
			labels.Regions[i] = indoor.RegionID(segRegion[si])
		}
	}
	return labels, nil
}

// segmentGaussian returns the mean location (majority floor) and the
// isotropic standard deviation of records [a, b].
func segmentGaussian(p *seq.PSequence, a, b int) (indoor.Location, float64) {
	var mx, my float64
	floorCnt := map[int]int{}
	n := float64(b - a + 1)
	for i := a; i <= b; i++ {
		mx += p.Records[i].Loc.X
		my += p.Records[i].Loc.Y
		floorCnt[p.Records[i].Loc.Floor]++
	}
	mx /= n
	my /= n
	floor, bestC := 0, -1
	for f, c := range floorCnt {
		if c > bestC || (c == bestC && f < floor) {
			floor, bestC = f, c
		}
	}
	var varSum float64
	for i := a; i <= b; i++ {
		dx, dy := p.Records[i].Loc.X-mx, p.Records[i].Loc.Y-my
		varSum += dx*dx + dy*dy
	}
	return indoor.Loc(mx, my, floor), math.Sqrt(varSum / n / 2)
}
