package baseline

import (
	"testing"

	"c2mn/internal/core"
	"c2mn/internal/eval"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

// testWorld builds a small simulated world shared by the tests.
func testWorld(t testing.TB) (*indoor.Space, []seq.LabeledSequence, []seq.LabeledSequence) {
	t.Helper()
	space, err := sim.GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(14, 1500)
	spec.StayMax = 300
	ds, err := sim.Generate(space, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test := eval.Split(ds.Sequences, 0.7, 3)
	return space, train, test
}

func fastC2MNConfig(train []seq.LabeledSequence) core.Config {
	p := features.DefaultParams()
	p.V = 6
	p.Cluster = TuneClusterParams(train)
	return core.Config{
		Params:  p,
		M:       40,
		MaxIter: 25,
		Seed:    1,
	}
}

// allMethods builds one of each method, tuned to the workload.
func allMethods(train []seq.LabeledSequence) []Method {
	cp := TuneClusterParams(train)
	c2mn := NewC2MN(fastC2MNConfig(train))
	c2mn.Exact = true
	cmn := NewCMN(fastC2MNConfig(train))
	cmn.Exact = true
	hmmdc := NewHMMDC()
	hmmdc.Cluster = cp
	sapda := NewSAPDA()
	sapda.Cluster = cp
	return []Method{
		NewSMoT(),
		hmmdc,
		NewSAPDV(),
		sapda,
		cmn,
		c2mn,
	}
}

func TestMethodsTrainAndAnnotate(t *testing.T) {
	space, train, test := testWorld(t)
	for _, m := range allMethods(train) {
		if err := m.Train(space, train); err != nil {
			t.Fatalf("%s Train: %v", m.Name(), err)
		}
		var counter eval.Counter
		for i := range test {
			labels, err := m.Annotate(&test[i].P)
			if err != nil {
				t.Fatalf("%s Annotate: %v", m.Name(), err)
			}
			n := test[i].P.Len()
			if len(labels.Regions) != n || len(labels.Events) != n {
				t.Fatalf("%s produced misaligned labels", m.Name())
			}
			for j, r := range labels.Regions {
				if r == indoor.NoRegion {
					t.Fatalf("%s left record %d unlabeled", m.Name(), j)
				}
			}
			if err := counter.Add(test[i].Labels, labels); err != nil {
				t.Fatal(err)
			}
		}
		acc := counter.Result(eval.DefaultLambda)
		t.Logf("%-8s RA=%.3f EA=%.3f CA=%.3f PA=%.3f", m.Name(), acc.RA, acc.EA, acc.CA, acc.PA)
		if acc.RA < 0.25 {
			t.Errorf("%s region accuracy %v is implausibly low", m.Name(), acc.RA)
		}
		if acc.EA < 0.4 {
			t.Errorf("%s event accuracy %v is implausibly low", m.Name(), acc.EA)
		}
	}
}

func TestAnnotateBeforeTrainFails(t *testing.T) {
	_, train, test := testWorld(t)
	for _, m := range allMethods(train) {
		if _, err := m.Annotate(&test[0].P); err == nil {
			t.Errorf("%s should fail before Train", m.Name())
		}
	}
}

func TestMethodNames(t *testing.T) {
	want := map[string]bool{
		"SMoT": true, "HMM+DC": true, "SAPDV": true, "SAPDA": true,
		"CMN": true, "C2MN": true,
	}
	for _, m := range allMethods(nil) {
		if !want[m.Name()] {
			t.Errorf("unexpected name %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing methods: %v", want)
	}
}

func TestC2MNVariants(t *testing.T) {
	cfg := fastC2MNConfig(nil)
	cases := []struct {
		label  string
		remove features.CliqueSet
	}{
		{"C2MN/Tran", features.Transition},
		{"C2MN/Syn", features.Synchronization},
		{"C2MN/ES", features.SegmentationES},
		{"C2MN/SS", features.SegmentationSS},
	}
	for _, tc := range cases {
		v := NewC2MNVariant(tc.label, cfg, tc.remove)
		if v.Name() != tc.label {
			t.Errorf("variant name = %q", v.Name())
		}
		if v.Cfg.Params.Cliques.Has(tc.remove) {
			t.Errorf("%s still has removed cliques", tc.label)
		}
		// Other cliques survive.
		if !v.Cfg.Params.Cliques.Has(features.Matching) {
			t.Errorf("%s lost matching cliques", tc.label)
		}
	}
}

func TestSMoTThresholdTuning(t *testing.T) {
	space, train, _ := testWorld(t)
	m := NewSMoT()
	before := m.Threshold
	if err := m.Train(space, train); err != nil {
		t.Fatal(err)
	}
	if m.Threshold <= 0 {
		t.Errorf("tuned threshold = %v", m.Threshold)
	}
	_ = before
	// Fixed threshold is preserved.
	m2 := NewSMoT()
	m2.Threshold = 1.23
	m2.FixedThreshold = true
	if err := m2.Train(space, train); err != nil {
		t.Fatal(err)
	}
	if m2.Threshold != 1.23 {
		t.Errorf("fixed threshold changed to %v", m2.Threshold)
	}
}

func TestSAPSegmentDVMinDuration(t *testing.T) {
	m := NewSAPDV()
	m.MinStayDur = 100
	// Slow records (stay candidates) for only 50 seconds: filtered out.
	p := &seq.PSequence{}
	for i := 0; i < 6; i++ {
		p.Records = append(p.Records, seq.Record{
			Loc: indoor.Loc(float64(i)*0.1, 0, 0),
			T:   float64(i * 10),
		})
	}
	// Fast tail so the average speed is dominated by movement.
	for i := 0; i < 6; i++ {
		p.Records = append(p.Records, seq.Record{
			Loc: indoor.Loc(10+float64(i)*20, 0, 0),
			T:   60 + float64(i*10),
		})
	}
	stay := m.segmentDV(p, 0.7)
	for i := 0; i < 6; i++ {
		if stay[i] {
			t.Errorf("short stay candidate %d survived the duration filter", i)
		}
	}
}

func TestSegmentGaussian(t *testing.T) {
	p := &seq.PSequence{Records: []seq.Record{
		{Loc: indoor.Loc(0, 0, 1), T: 0},
		{Loc: indoor.Loc(2, 0, 1), T: 1},
		{Loc: indoor.Loc(0, 2, 1), T: 2},
		{Loc: indoor.Loc(2, 2, 2), T: 3},
	}}
	mean, sigma := segmentGaussian(p, 0, 3)
	if mean.X != 1 || mean.Y != 1 {
		t.Errorf("mean = %v", mean)
	}
	if mean.Floor != 1 {
		t.Errorf("majority floor = %d", mean.Floor)
	}
	if sigma <= 0 {
		t.Errorf("sigma = %v", sigma)
	}
}

func TestSpeedAt(t *testing.T) {
	p := &seq.PSequence{Records: []seq.Record{
		{Loc: indoor.Loc(0, 0, 0), T: 0},
		{Loc: indoor.Loc(10, 0, 0), T: 10},
		{Loc: indoor.Loc(10, 10, 0), T: 15},
	}}
	// Record 1: segment speeds 1.0 and 2.0 → 1.5.
	if got := speedAt(p, 1); got != 1.5 {
		t.Errorf("speedAt(1) = %v", got)
	}
	// Endpoints use the single adjacent segment.
	if got := speedAt(p, 0); got != 1.0 {
		t.Errorf("speedAt(0) = %v", got)
	}
	if got := speedAt(p, 2); got != 2.0 {
		t.Errorf("speedAt(2) = %v", got)
	}
	single := &seq.PSequence{Records: []seq.Record{{T: 0}}}
	if got := speedAt(single, 0); got != 0 {
		t.Errorf("speedAt(single) = %v", got)
	}
}

func TestC2MNModelAccessor(t *testing.T) {
	space, train, _ := testWorld(t)
	m := NewC2MN(fastC2MNConfig(train))
	m.Exact = true
	if m.Model() != nil {
		t.Errorf("model should be nil before Train")
	}
	if err := m.Train(space, train); err != nil {
		t.Fatal(err)
	}
	if m.Model() == nil {
		t.Errorf("model nil after Train")
	}
}
