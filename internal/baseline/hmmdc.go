package baseline

import (
	"fmt"

	"c2mn/internal/cluster"
	"c2mn/internal/hmm"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// HMMDC is the paper's HMM+DC baseline (§V-A), previously used in the
// TRIPS system [12]: semantic regions are HMM hidden states and
// grid-discretised positioning records are observations; parameters
// come from frequency counting and regions from Viterbi decoding.
// Events come from an st-DBSCAN clustering ("DC"): core and border
// points are stays, noise points are passes.
type HMMDC struct {
	// CellSize is the observation grid resolution in meters.
	CellSize float64
	// Cluster holds the st-DBSCAN parameters for event labeling.
	Cluster cluster.Params
	// Smoothing is the Laplace pseudo-count for the HMM.
	Smoothing float64

	space *indoor.Space
	grid  *hmm.Grid
	model *hmm.Model
}

// NewHMMDC returns an HMM+DC with the defaults used in the
// experiments: 4 m grid cells and the paper's st-DBSCAN setting.
func NewHMMDC() *HMMDC {
	return &HMMDC{
		CellSize:  4,
		Cluster:   cluster.Params{EpsS: 8, EpsT: 60, MinPts: 4},
		Smoothing: 0.1,
	}
}

// Name implements Method.
func (m *HMMDC) Name() string { return "HMM+DC" }

// Train implements Method.
func (m *HMMDC) Train(space *indoor.Space, data []seq.LabeledSequence) error {
	m.space = space
	b := space.Bounds()
	floors := space.Floors()
	grid, err := hmm.NewGrid(b.Min.X, b.Min.Y, b.Max.X, b.Max.Y, m.CellSize, len(floors))
	if err != nil {
		return fmt.Errorf("baseline: HMM+DC grid: %w", err)
	}
	m.grid = grid
	counter, err := hmm.NewCounter(space.NumRegions(), grid.NumCells())
	if err != nil {
		return err
	}
	for i := range data {
		ls := &data[i]
		states := make([]int, 0, ls.P.Len())
		obs := make([]int, 0, ls.P.Len())
		for j, rec := range ls.P.Records {
			r := ls.Labels.Regions[j]
			if r == indoor.NoRegion {
				continue
			}
			states = append(states, int(r))
			obs = append(obs, m.cell(rec.Loc))
		}
		if len(states) == 0 {
			continue
		}
		if err := counter.AddSequence(states, obs); err != nil {
			return err
		}
	}
	m.model = counter.Estimate(m.Smoothing)
	return nil
}

// cell maps a location to its grid observation, normalising floors to
// 0-based indices.
func (m *HMMDC) cell(l indoor.Location) int {
	floors := m.space.Floors()
	fi := 0
	for i, f := range floors {
		if f == l.Floor {
			fi = i
			break
		}
	}
	return m.grid.Cell(l.X, l.Y, fi)
}

// Annotate implements Method.
func (m *HMMDC) Annotate(p *seq.PSequence) (seq.Labels, error) {
	if err := requireTrained(m.model != nil, m.Name()); err != nil {
		return seq.Labels{}, err
	}
	n := p.Len()
	labels := seq.NewLabels(n)
	// Regions: Viterbi decoding.
	obs := make([]int, n)
	for i, rec := range p.Records {
		obs[i] = m.cell(rec.Loc)
	}
	path, _, err := m.model.Viterbi(obs)
	if err != nil {
		return seq.Labels{}, err
	}
	for i, s := range path {
		labels.Regions[i] = indoor.RegionID(s)
	}
	// Events: density clustering.
	pts := make([]cluster.Point, n)
	for i, rec := range p.Records {
		pts[i] = cluster.Point{X: rec.Loc.X, Y: rec.Loc.Y, Floor: rec.Loc.Floor, T: rec.T}
	}
	res, err := cluster.Run(pts, m.Cluster)
	if err != nil {
		return seq.Labels{}, err
	}
	for i, tag := range res.Tag {
		if tag == cluster.Noise {
			labels.Events[i] = seq.Pass
		} else {
			labels.Events[i] = seq.Stay
		}
	}
	return labels, nil
}
