package baseline

import (
	"sort"

	"c2mn/internal/cluster"
	"c2mn/internal/seq"
)

// TuneClusterParams scales the paper's st-DBSCAN setting (εs = 8 m,
// εt = 60 s, ptm = 4, tuned for ~1/15 Hz mall data) to a workload's
// observed sampling interval and noise amplitude. The paper tunes
// these per dataset ("all are tuned to the best performance", §V-C);
// this helper automates the same adjustment:
//
//   - εs tracks the positioning noise, estimated as twice the 25th
//     percentile of consecutive-record distances (records taken while
//     dwelling are about one error radius apart);
//   - εt preserves the paper's implied stay/pass speed cutoff
//     εs/εt ≈ 0.13 m/s, and always spans enough samples for ptm.
func TuneClusterParams(data []seq.LabeledSequence) cluster.Params {
	var dts, dists []float64
	for i := range data {
		p := &data[i].P
		for j := 1; j < p.Len(); j++ {
			dts = append(dts, p.Records[j].T-p.Records[j-1].T)
			dists = append(dists, p.Records[j].Loc.Dist(p.Records[j-1].Loc))
		}
	}
	params := cluster.Params{EpsS: 8, EpsT: 60, MinPts: 4}
	if len(dts) == 0 {
		return params
	}
	sort.Float64s(dts)
	sort.Float64s(dists)
	medianDt := dts[len(dts)/2]
	noise := dists[len(dists)/4]

	epsS := 2 * noise
	if epsS < 3 {
		epsS = 3
	}
	if epsS > 12 {
		epsS = 12
	}
	epsT := epsS / 0.1333
	if minSpan := 3.5 * medianDt; epsT < minSpan {
		epsT = minSpan
	}
	if epsT > 120 {
		epsT = 120
	}
	params.EpsS = epsS
	params.EpsT = epsT
	return params
}
