// Package baseline implements the comparison methods of the paper's
// §V-A under a common Method interface:
//
//   - SMoT     — speed-thresholded events, nearest-neighbour regions
//     (Alvares et al. [2]);
//   - HMM+DC   — HMM region decoding over grid observations plus
//     st-DBSCAN ("DC") events, as in the TRIPS system [12];
//   - SAPDV    — SAP layered annotation with dynamic-velocity
//     segmentation (Yan et al. [26]);
//   - SAPDA    — SAP with density-area segmentation;
//   - CMN      — the decoupled conditional Markov network (no
//     segmentation cliques, asynchronous R/E inference);
//   - C2MN and its structural ablations C2MN/Tran, C2MN/Syn, C2MN/ES,
//     C2MN/SS and C2MN@R.
package baseline

import (
	"fmt"

	"c2mn/internal/core"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Method is a trainable record-level annotator. Train must be called
// before Annotate.
type Method interface {
	// Name returns the method's display name as used in the paper's
	// tables.
	Name() string
	// Train fits the method on labeled sequences over the space.
	Train(space *indoor.Space, data []seq.LabeledSequence) error
	// Annotate labels one p-sequence.
	Annotate(p *seq.PSequence) (seq.Labels, error)
}

// speedAt estimates the movement speed at record i as the average of
// the adjacent segment speeds.
func speedAt(p *seq.PSequence, i int) float64 {
	var sum float64
	var n int
	if i > 0 {
		if dt := p.Records[i].T - p.Records[i-1].T; dt > 0 {
			sum += p.Records[i].Loc.Dist(p.Records[i-1].Loc) / dt
			n++
		}
	}
	if i+1 < p.Len() {
		if dt := p.Records[i+1].T - p.Records[i].T; dt > 0 {
			sum += p.Records[i+1].Loc.Dist(p.Records[i].Loc) / dt
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// nearestRegions labels every record with its nearest semantic region.
func nearestRegions(space *indoor.Space, p *seq.PSequence) []indoor.RegionID {
	out := make([]indoor.RegionID, p.Len())
	for i, rec := range p.Records {
		out[i] = space.NearestRegion(rec.Loc)
	}
	return out
}

func requireTrained(trained bool, name string) error {
	if !trained {
		return fmt.Errorf("baseline: %s used before Train", name)
	}
	return nil
}

// C2MN wraps the core model as a Method, covering the full model and
// its structural ablations.
type C2MN struct {
	// Label is the display name (e.g. "C2MN", "C2MN/Tran").
	Label string
	// Cfg is the training configuration.
	Cfg core.Config
	// Exact selects the exact pseudo-likelihood trainer instead of
	// Algorithm 1 (used by fast tests and the exact-vs-MCMC ablation).
	Exact bool

	model *core.Model
	ex    *features.Extractor
}

// NewC2MN returns the full model with the given config.
func NewC2MN(cfg core.Config) *C2MN { return &C2MN{Label: "C2MN", Cfg: cfg} }

// NewC2MNVariant returns a structural ablation: the cliques in remove
// are disabled. Conventional labels: "C2MN/Tran" (no transition
// cliques), "C2MN/Syn" (no synchronization cliques), "C2MN/ES",
// "C2MN/SS".
func NewC2MNVariant(label string, cfg core.Config, remove features.CliqueSet) *C2MN {
	if cfg.Params.V == 0 && cfg.Params.Alpha == 0 {
		cfg.Params = features.DefaultParams()
	}
	cfg.Params.Cliques &^= remove
	return &C2MN{Label: label, Cfg: cfg}
}

// NewCMN returns the decoupled CMN baseline (no segmentation cliques,
// independent R/E inference).
func NewCMN(cfg core.Config) *C2MN {
	cfg.Decoupled = true
	return &C2MN{Label: "CMN", Cfg: cfg}
}

// Name implements Method.
func (m *C2MN) Name() string { return m.Label }

// Train implements Method.
func (m *C2MN) Train(space *indoor.Space, data []seq.LabeledSequence) error {
	var err error
	if m.Exact {
		m.model, _, err = core.TrainExact(space, data, m.Cfg)
	} else {
		m.model, _, err = core.Train(space, data, m.Cfg)
	}
	if err != nil {
		return err
	}
	m.ex, err = features.NewExtractor(space, m.model.Params)
	return err
}

// Model exposes the trained model (nil before Train).
func (m *C2MN) Model() *core.Model { return m.model }

// Annotate implements Method.
func (m *C2MN) Annotate(p *seq.PSequence) (seq.Labels, error) {
	if err := requireTrained(m.model != nil, m.Label); err != nil {
		return seq.Labels{}, err
	}
	ctx := m.ex.NewSeqContext(p, nil)
	return m.model.Annotate(ctx, core.InferOptions{}), nil
}
