package baseline

import (
	"testing"

	"c2mn/internal/eval"
)

func TestLCCRFTrainAndAnnotate(t *testing.T) {
	space, train, test := testWorld(t)
	params := fastC2MNConfig(train).Params
	m := NewLCCRF(params)
	if m.Name() != "LCCRF" {
		t.Errorf("name = %q", m.Name())
	}
	if _, err := m.Annotate(&test[0].P); err == nil {
		t.Errorf("annotate before train should fail")
	}
	if err := m.Train(space, train); err != nil {
		t.Fatal(err)
	}
	var counter eval.Counter
	for i := range test {
		labels, err := m.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if err := counter.Add(test[i].Labels, labels); err != nil {
			t.Fatal(err)
		}
	}
	acc := counter.Result(eval.DefaultLambda)
	t.Logf("LCCRF: RA=%.3f EA=%.3f CA=%.3f PA=%.3f", acc.RA, acc.EA, acc.CA, acc.PA)
	if acc.RA < 0.5 || acc.EA < 0.5 {
		t.Errorf("LCCRF accuracy implausibly low: %+v", acc)
	}
}

func TestLCCRFDefaults(t *testing.T) {
	var zero LCCRF
	m := NewLCCRF(zero.Params)
	if m.Params.V != 15 {
		t.Errorf("zero params should fall back to paper defaults, got V=%v", m.Params.V)
	}
}
