package baseline

import (
	"fmt"

	"c2mn/internal/crf"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// LCCRF is the "generic CRF library" approach the paper's novelty
// argument contrasts with: two independent linear-chain CRFs — one
// over region labels, one over event labels — using the same indoor
// features as C2MN's matching/transition/synchronization cliques, but
// with no coupling between the two chains and no segmentation
// features. Training is exact maximum likelihood (forward–backward),
// decoding exact Viterbi.
type LCCRF struct {
	// Params configures feature extraction (V, st-DBSCAN, γ's).
	Params features.Params
	// Sigma2 is the CRF prior variance.
	Sigma2 float64

	space       *indoor.Space
	ex          *features.Extractor
	regionModel *crf.Model
	eventModel  *crf.Model
}

// Feature layout of the two chains (both dimension 3).
const (
	lcUnary = 0 // fsm or fem
	lcTrans = 1 // fst or fet
	lcSync  = 2 // fsc or fec
	lcDim   = 3
)

// NewLCCRF returns an untrained LCCRF with the given feature
// parameters (zero value: paper defaults).
func NewLCCRF(params features.Params) *LCCRF {
	if params.V == 0 && params.Alpha == 0 {
		params = features.DefaultParams()
	}
	return &LCCRF{Params: params, Sigma2: 1}
}

// Name implements Method.
func (m *LCCRF) Name() string { return "LCCRF" }

// Train implements Method.
func (m *LCCRF) Train(space *indoor.Space, data []seq.LabeledSequence) error {
	m.space = space
	ex, err := features.NewExtractor(space, m.Params)
	if err != nil {
		return err
	}
	m.ex = ex
	var regionLats, eventLats []*crf.Lattice
	for i := range data {
		ls := &data[i]
		if ls.P.Len() == 0 {
			continue
		}
		ctx := ex.NewSeqContext(&ls.P, ls.Labels.Regions)
		rl, ok := m.regionLattice(ctx, ls.Labels.Regions)
		if ok {
			regionLats = append(regionLats, rl)
		}
		eventLats = append(eventLats, m.eventLattice(ctx, ls.Labels.Events))
	}
	if len(regionLats) == 0 || len(eventLats) == 0 {
		return fmt.Errorf("baseline: LCCRF: no usable training sequences")
	}
	if m.regionModel, err = crf.Fit(regionLats, crf.Config{Dim: lcDim, Sigma2: m.Sigma2}); err != nil {
		return fmt.Errorf("baseline: LCCRF region chain: %w", err)
	}
	if m.eventModel, err = crf.Fit(eventLats, crf.Config{Dim: lcDim, Sigma2: m.Sigma2}); err != nil {
		return fmt.Errorf("baseline: LCCRF event chain: %w", err)
	}
	return nil
}

// regionLattice builds the region chain for a sequence; truth may be
// nil for decoding. ok is false when a truth label is missing from the
// candidate set (the sequence cannot supervise the chain).
func (m *LCCRF) regionLattice(ctx *features.SeqContext, truth []indoor.RegionID) (*crf.Lattice, bool) {
	n := ctx.Len()
	l := &crf.Lattice{
		Unary: make([][][]float64, n),
		Pair:  make([][][][]float64, max(0, n-1)),
	}
	if truth != nil {
		l.Truth = make([]int, n)
	}
	for i := 0; i < n; i++ {
		cands := ctx.Candidates[i]
		l.Unary[i] = make([][]float64, len(cands))
		for k, r := range cands {
			l.Unary[i][k] = []float64{ctx.SM(i, r), 0, 0}
		}
		if truth != nil {
			idx := -1
			for k, r := range cands {
				if r == truth[i] {
					idx = k
				}
			}
			if idx < 0 {
				return nil, false
			}
			l.Truth[i] = idx
		}
		if i+1 < n {
			next := ctx.Candidates[i+1]
			l.Pair[i] = make([][][]float64, len(cands))
			for k, rk := range cands {
				l.Pair[i][k] = make([][]float64, len(next))
				for x, rx := range next {
					l.Pair[i][k][x] = []float64{0, ctx.ST(i, rk, rx), ctx.SC(i, rk, rx)}
				}
			}
		}
	}
	return l, true
}

// eventLattice builds the event chain; truth may be nil.
func (m *LCCRF) eventLattice(ctx *features.SeqContext, truth []seq.Event) *crf.Lattice {
	n := ctx.Len()
	l := &crf.Lattice{
		Unary: make([][][]float64, n),
		Pair:  make([][][][]float64, max(0, n-1)),
	}
	if truth != nil {
		l.Truth = make([]int, n)
	}
	for i := 0; i < n; i++ {
		l.Unary[i] = make([][]float64, seq.NumEvents)
		for e := 0; e < seq.NumEvents; e++ {
			l.Unary[i][e] = []float64{ctx.EM(i, seq.Event(e)), 0, 0}
		}
		if truth != nil {
			l.Truth[i] = int(truth[i])
		}
		if i+1 < n {
			l.Pair[i] = make([][][]float64, seq.NumEvents)
			for a := 0; a < seq.NumEvents; a++ {
				l.Pair[i][a] = make([][]float64, seq.NumEvents)
				for b := 0; b < seq.NumEvents; b++ {
					l.Pair[i][a][b] = []float64{0, ctx.ET(seq.Event(a), seq.Event(b)), ctx.EC(i, seq.Event(a), seq.Event(b))}
				}
			}
		}
	}
	return l
}

// Annotate implements Method.
func (m *LCCRF) Annotate(p *seq.PSequence) (seq.Labels, error) {
	if err := requireTrained(m.regionModel != nil, m.Name()); err != nil {
		return seq.Labels{}, err
	}
	ctx := m.ex.NewSeqContext(p, nil)
	n := ctx.Len()
	labels := seq.NewLabels(n)
	rl, _ := m.regionLattice(ctx, nil)
	rPath, _, err := m.regionModel.Decode(rl)
	if err != nil {
		return seq.Labels{}, err
	}
	for i, k := range rPath {
		labels.Regions[i] = ctx.Candidates[i][k]
	}
	el := m.eventLattice(ctx, nil)
	ePath, _, err := m.eventModel.Decode(el)
	if err != nil {
		return seq.Labels{}, err
	}
	for i, e := range ePath {
		labels.Events[i] = seq.Event(e)
	}
	return labels, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
