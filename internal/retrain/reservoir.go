package retrain

import (
	"math/rand"

	"c2mn/internal/seq"
)

// Sample is one labeled sequence held for retraining. Truth marks
// operator-supplied ground truth as opposed to a sample the incumbent
// model labeled itself.
type Sample struct {
	LS    seq.LabeledSequence
	Truth bool
}

// Reservoir keeps a bounded uniform sample of the sequences offered
// to it (Vitter's algorithm R): the first cap samples are kept
// verbatim, after which each new sample replaces a uniformly chosen
// slot with probability cap/seen. Memory stays bounded no matter how
// long the venue streams, while the kept slice remains an unbiased
// sample of everything offered. Deterministic per seed. Not safe for
// concurrent use; State serializes access.
type Reservoir struct {
	cap  int
	rng  *rand.Rand
	seen int64
	buf  []Sample
}

// NewReservoir builds a reservoir keeping at most cap samples.
func NewReservoir(cap int, seed int64) *Reservoir {
	return &Reservoir{cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one sample.
func (r *Reservoir) Add(s Sample) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.buf[j] = s
	}
}

// Len returns how many samples are held.
func (r *Reservoir) Len() int { return len(r.buf) }

// Seen returns how many samples were ever offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Snapshot copies the held samples.
func (r *Reservoir) Snapshot() []Sample {
	return append([]Sample(nil), r.buf...)
}

// Clear drops every held sample (the offered count keeps ticking so
// later Adds stay uniformly weighted against a fresh window).
func (r *Reservoir) Clear() {
	r.buf, r.seen = nil, 0
}
