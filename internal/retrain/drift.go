package retrain

import (
	"math"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// Detector tracks region-label distribution shift on one venue's
// annotated stream with a population stability index (PSI) against a
// frozen reference histogram.
//
// The first `window` observed sequences build the reference — the
// labeling distribution the serving model was implicitly validated
// against — which then freezes. After that, a sliding window of the
// most recent `window` sequences is compared against the reference:
//
//	PSI = Σ_b (q_b − p_b) · ln(q_b / p_b)
//
// over the per-record region-label histogram buckets b (NoRegion is a
// bucket too: a model increasingly unable to explain traffic shows up
// as NoRegion mass, which is exactly the annotation-confidence signal
// an energy-based MAP labeler exposes). Both distributions are
// Laplace-smoothed over the union of observed buckets, so a region
// appearing on only one side cannot produce an infinite index.
//
// The detector is not safe for concurrent use; State serializes
// access to it.
type Detector struct {
	window    int
	threshold float64

	// Frozen reference: per-region record counts over the first
	// `window` sequences.
	ref     map[indoor.RegionID]int
	refSeqs int
	refN    int
	frozen  bool

	// Sliding window: a ring of per-sequence histograms plus their
	// running aggregate, so evicting the oldest is O(its regions).
	ring []map[indoor.RegionID]int
	next int
	full bool
	cur  map[indoor.RegionID]int
	curN int

	psi float64
}

// NewDetector builds a detector with the given sliding-window length
// (in sequences) and PSI trigger threshold.
func NewDetector(window int, threshold float64) *Detector {
	return &Detector{
		window:    window,
		threshold: threshold,
		ref:       map[indoor.RegionID]int{},
		ring:      make([]map[indoor.RegionID]int, window),
		cur:       map[indoor.RegionID]int{},
	}
}

// Observe folds one sequence's labels in and returns the current PSI
// plus whether it crossed the threshold. Sequences with no labels are
// ignored. Until the reference froze and the sliding window filled,
// PSI is 0 and the detector never fires.
func (d *Detector) Observe(labels seq.Labels) (psi float64, drifted bool) {
	if len(labels.Regions) == 0 {
		return d.psi, false
	}
	if !d.frozen {
		for _, r := range labels.Regions {
			d.ref[r]++
		}
		d.refN += len(labels.Regions)
		d.refSeqs++
		if d.refSeqs >= d.window {
			d.frozen = true
		}
		return 0, false
	}
	h := make(map[indoor.RegionID]int, 8)
	for _, r := range labels.Regions {
		h[r]++
	}
	if old := d.ring[d.next]; old != nil {
		for r, n := range old {
			d.cur[r] -= n
			d.curN -= n
			if d.cur[r] == 0 {
				delete(d.cur, r)
			}
		}
	}
	d.ring[d.next] = h
	for r, n := range h {
		d.cur[r] += n
		d.curN += n
	}
	d.next++
	if d.next == d.window {
		d.next, d.full = 0, true
	}
	if !d.full {
		return 0, false
	}
	d.psi = psiIndex(d.ref, d.refN, d.cur, d.curN)
	return d.psi, d.psi >= d.threshold
}

// PSI returns the last computed index (0 until the window fills).
func (d *Detector) PSI() float64 { return d.psi }

// Ready reports whether the reference froze and the sliding window
// filled, i.e. PSI is being computed.
func (d *Detector) Ready() bool { return d.frozen && d.full }

// Reset clears everything: the next `window` sequences build a fresh
// reference. Called after a model swap — the new model's labeling
// distribution is the new normal, and comparing it against the old
// model's reference would re-trigger immediately.
func (d *Detector) Reset() {
	d.ref = map[indoor.RegionID]int{}
	d.refSeqs, d.refN, d.frozen = 0, 0, false
	d.ring = make([]map[indoor.RegionID]int, d.window)
	d.next, d.full = 0, false
	d.cur = map[indoor.RegionID]int{}
	d.curN = 0
	d.psi = 0
}

// psiSmoothing is the Laplace count added to every bucket on both
// sides, so buckets present on only one side stay finite.
const psiSmoothing = 0.5

// psiIndex computes the smoothed PSI between the reference histogram
// (expected) and the current window histogram (actual).
func psiIndex(ref map[indoor.RegionID]int, refN int, cur map[indoor.RegionID]int, curN int) float64 {
	if refN == 0 || curN == 0 {
		return 0
	}
	keys := make(map[indoor.RegionID]struct{}, len(ref)+len(cur))
	for r := range ref {
		keys[r] = struct{}{}
	}
	for r := range cur {
		keys[r] = struct{}{}
	}
	k := float64(len(keys))
	if k == 0 {
		return 0
	}
	refTotal := float64(refN) + psiSmoothing*k
	curTotal := float64(curN) + psiSmoothing*k
	psi := 0.0
	for r := range keys {
		p := (float64(ref[r]) + psiSmoothing) / refTotal
		q := (float64(cur[r]) + psiSmoothing) / curTotal
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}
