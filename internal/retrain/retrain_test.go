package retrain

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"c2mn/internal/indoor"
	"c2mn/internal/seq"
)

// labelsFrom builds an n-record label vector whose regions are drawn
// from dist (region → weight) by rng, events alternating Stay/Pass.
func labelsFrom(rng *rand.Rand, n int, dist map[indoor.RegionID]float64) seq.Labels {
	total := 0.0
	for _, w := range dist {
		total += w
	}
	regions := make([]indoor.RegionID, 0, len(dist))
	for r := range dist {
		regions = append(regions, r)
	}
	// Deterministic iteration order for reproducibility.
	for i := 1; i < len(regions); i++ {
		for j := i; j > 0 && regions[j] < regions[j-1]; j-- {
			regions[j], regions[j-1] = regions[j-1], regions[j]
		}
	}
	l := seq.NewLabels(n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		for _, r := range regions {
			x -= dist[r]
			if x <= 0 {
				l.Regions[i] = r
				break
			}
		}
		if i%2 == 0 {
			l.Events[i] = seq.Stay
		} else {
			l.Events[i] = seq.Pass
		}
	}
	return l
}

// TestDetectorStationaryNoTrigger replays a stationary label
// distribution through many full windows: the detector must never
// fire at the default threshold.
func TestDetectorStationaryNoTrigger(t *testing.T) {
	dist := map[indoor.RegionID]float64{1: 5, 2: 3, 3: 2, indoor.NoRegion: 1}
	for _, trial := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(trial))
		d := NewDetector(64, DefaultDriftThreshold)
		for i := 0; i < 64*20; i++ {
			psi, drifted := d.Observe(labelsFrom(rng, 20, dist))
			if drifted {
				t.Fatalf("trial %d: detector fired on stationary replay at sequence %d (PSI %.4f)", trial, i, psi)
			}
		}
		if !d.Ready() {
			t.Fatalf("trial %d: detector never became ready", trial)
		}
	}
}

// TestDetectorShiftTriggers injects a hard label-distribution shift
// after the reference froze: the detector must fire within one
// sliding window of the shift, for every seed tried.
func TestDetectorShiftTriggers(t *testing.T) {
	before := map[indoor.RegionID]float64{1: 5, 2: 3, 3: 2}
	after := map[indoor.RegionID]float64{4: 6, 5: 3, 1: 1}
	for _, trial := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(trial))
		d := NewDetector(32, DefaultDriftThreshold)
		// Freeze the reference and fill the window on the old regime.
		for i := 0; i < 64; i++ {
			if _, drifted := d.Observe(labelsFrom(rng, 20, before)); drifted {
				t.Fatalf("trial %d: fired before the shift", trial)
			}
		}
		fired := false
		for i := 0; i < 32; i++ {
			if _, drifted := d.Observe(labelsFrom(rng, 20, after)); drifted {
				fired = true
				break
			}
		}
		if !fired {
			t.Fatalf("trial %d: detector missed an injected shift within a full window (PSI %.4f)", trial, d.PSI())
		}
	}
}

// TestDetectorReset verifies a reset rebuilds the reference: the
// shifted regime becomes the new normal and stops triggering.
func TestDetectorReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDetector(16, DefaultDriftThreshold)
	for i := 0; i < 32; i++ {
		d.Observe(labelsFrom(rng, 20, map[indoor.RegionID]float64{1: 1}))
	}
	if _, drifted := d.Observe(labelsFrom(rng, 20, map[indoor.RegionID]float64{9: 1})); drifted {
		// May need a few sequences of the new regime to fire; ensure it
		// does fire eventually before the reset.
	}
	fired := false
	for i := 0; i < 16; i++ {
		if _, dr := d.Observe(labelsFrom(rng, 20, map[indoor.RegionID]float64{9: 1})); dr {
			fired = true
		}
	}
	if !fired {
		t.Fatal("detector did not fire on a total shift")
	}
	d.Reset()
	if d.Ready() || d.PSI() != 0 {
		t.Fatal("reset did not clear the detector")
	}
	for i := 0; i < 48; i++ {
		if _, dr := d.Observe(labelsFrom(rng, 20, map[indoor.RegionID]float64{9: 1})); dr {
			t.Fatal("detector fired on the re-referenced regime")
		}
	}
}

func TestReservoirBoundedAndUniformish(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 1000; i++ {
		r.Add(Sample{LS: seq.LabeledSequence{P: seq.PSequence{ObjectID: fmt.Sprint(i)}}})
	}
	if r.Len() != 10 {
		t.Fatalf("reservoir holds %d, want 10", r.Len())
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen %d, want 1000", r.Seen())
	}
	// Uniformity smoke test: over many trials, early and late items
	// should be retained at comparable rates.
	early, late := 0, 0
	for trial := int64(0); trial < 200; trial++ {
		r := NewReservoir(10, trial)
		for i := 0; i < 200; i++ {
			r.Add(Sample{LS: seq.LabeledSequence{P: seq.PSequence{ObjectID: fmt.Sprint(i)}}})
		}
		for _, s := range r.Snapshot() {
			var id int
			fmt.Sscanf(s.LS.P.ObjectID, "%d", &id)
			if id < 100 {
				early++
			} else {
				late++
			}
		}
	}
	if early == 0 || late == 0 {
		t.Fatalf("reservoir retention degenerate: early %d, late %d", early, late)
	}
	ratio := float64(early) / float64(late)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("reservoir retention skewed: early %d, late %d", early, late)
	}
}

// sampleSeqs builds n labeled sequences, all-region `region`, 4
// records each.
func sampleSeqs(n int, region indoor.RegionID) []seq.LabeledSequence {
	out := make([]seq.LabeledSequence, n)
	for i := range out {
		p := seq.PSequence{ObjectID: fmt.Sprintf("o%d", i)}
		for j := 0; j < 4; j++ {
			p.Records = append(p.Records, seq.Record{T: float64(j)})
		}
		l := seq.NewLabels(4)
		for j := range l.Regions {
			l.Regions[j] = region
			l.Events[j] = seq.Stay
		}
		out[i] = seq.LabeledSequence{P: p, Labels: l}
	}
	return out
}

// constAnnotate returns an AnnotateFunc labeling every record with
// region r — but flipping the first `wrong` records to region 99.
func constAnnotate(r indoor.RegionID, wrong int) AnnotateFunc {
	return func(p *seq.PSequence) (seq.Labels, error) {
		l := seq.NewLabels(p.Len())
		for i := range l.Regions {
			l.Regions[i] = r
			if i < wrong {
				l.Regions[i] = 99
			}
			l.Events[i] = seq.Stay
		}
		return l, nil
	}
}

func newTestState() *State {
	return NewState(Config{MinSamples: 8, DriftWindow: 4, Cooldown: 1, Seed: 42})
}

// TestRunWorseCandidateRejected proves the gate: a candidate scoring
// below the incumbent on the holdout is never installed.
func TestRunWorseCandidateRejected(t *testing.T) {
	st := newTestState()
	st.AddTruth(sampleSeqs(16, 1))
	installed := false
	d, err := st.Run("v", TriggerManual,
		constAnnotate(1, 1), // incumbent: 3/4 records right
		func(train []seq.LabeledSequence) (Candidate, error) {
			return Candidate{
				Annotate: constAnnotate(1, 2), // candidate: 2/4 right — worse
				Install:  func() error { installed = true; return nil },
				Hash:     "cand",
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q, want rejected (decision %+v)", d.Outcome, d)
	}
	if installed {
		t.Fatal("worse candidate was installed")
	}
	if !(d.CandidateCA < d.IncumbentCA) {
		t.Fatalf("scores inverted: cand %.3f vs inc %.3f", d.CandidateCA, d.IncumbentCA)
	}
	if st.Status().Counts[OutcomeRejected] != 1 {
		t.Fatal("rejection not audited")
	}
}

// TestRunBetterCandidateSwaps proves the other side: a strictly
// better candidate is installed, and the swap is audited.
func TestRunBetterCandidateSwaps(t *testing.T) {
	st := newTestState()
	st.AddTruth(sampleSeqs(16, 1))
	installed := false
	d, err := st.Run("v", TriggerDrift,
		constAnnotate(1, 1), // incumbent: 3/4 right
		func(train []seq.LabeledSequence) (Candidate, error) {
			if len(train) == 0 {
				t.Fatal("empty training slice")
			}
			return Candidate{
				Annotate: constAnnotate(1, 0), // candidate: perfect
				Install:  func() error { installed = true; return nil },
				Hash:     "cand",
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeSwapped || !installed {
		t.Fatalf("outcome %q installed=%v, want swapped", d.Outcome, installed)
	}
	if d.ModelHash != "cand" {
		t.Fatalf("audit hash %q", d.ModelHash)
	}
	swaps, last := st.Swaps()
	if swaps != 1 || last == 0 {
		t.Fatalf("swap bookkeeping: %d at %d", swaps, last)
	}
	if st.Status().StreamSamples != 0 {
		t.Fatal("stream reservoir not cleared after swap")
	}
}

// TestRunSelfLabelsNeverSwap: with only self-labeled stream samples,
// the incumbent scores CA = 1 on its own labels, so no candidate can
// strictly beat it — a venue without ground truth must never rotate.
func TestRunSelfLabelsNeverSwap(t *testing.T) {
	st := newTestState()
	incumbent := constAnnotate(1, 0)
	for _, ls := range sampleSeqs(16, 1) {
		st.Observe(ls.Labels, ls) // self-labeled: labels == incumbent output
	}
	d, err := st.Run("v", TriggerManual, incumbent,
		func(train []seq.LabeledSequence) (Candidate, error) {
			return Candidate{Annotate: constAnnotate(1, 0), Install: func() error {
				t.Fatal("swap installed on self-labeled data")
				return nil
			}, Hash: "cand"}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if d.Outcome != OutcomeRejected {
		t.Fatalf("outcome %q, want rejected", d.Outcome)
	}
	if d.IncumbentCA != 1 {
		t.Fatalf("incumbent CA %.3f on its own labels, want 1", d.IncumbentCA)
	}
}

func TestRunInsufficientSamplesSkips(t *testing.T) {
	st := newTestState()
	st.AddTruth(sampleSeqs(3, 1))
	d, err := st.Run("v", TriggerManual, constAnnotate(1, 0), func([]seq.LabeledSequence) (Candidate, error) {
		t.Fatal("trained despite too few samples")
		return Candidate{}, nil
	})
	if !errors.Is(err, ErrSamples) {
		t.Fatalf("err %v, want ErrSamples", err)
	}
	if d.Outcome != OutcomeSkipped {
		t.Fatalf("outcome %q, want skipped", d.Outcome)
	}
}

func TestRunBusy(t *testing.T) {
	st := newTestState()
	st.AddTruth(sampleSeqs(16, 1))
	release := make(chan struct{})
	started := make(chan struct{})
	go st.Run("v", TriggerManual, constAnnotate(1, 1), func([]seq.LabeledSequence) (Candidate, error) {
		close(started)
		<-release
		return Candidate{Annotate: constAnnotate(1, 0), Install: func() error { return nil }}, nil
	})
	<-started
	if _, err := st.Run("v", TriggerManual, constAnnotate(1, 0), nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent cycle: err %v, want ErrBusy", err)
	}
	close(release)
}

// TestRunFailedTraining audits a trainer error without installing.
func TestRunFailedTraining(t *testing.T) {
	st := newTestState()
	st.AddTruth(sampleSeqs(16, 1))
	boom := errors.New("boom")
	d, err := st.Run("v", TriggerManual, constAnnotate(1, 0), func([]seq.LabeledSequence) (Candidate, error) {
		return Candidate{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v", err)
	}
	if d.Outcome != OutcomeFailed {
		t.Fatalf("outcome %q, want failed", d.Outcome)
	}
	// The loop must be reusable after a failure.
	if st.Status().Busy {
		t.Fatal("state stuck busy after failure")
	}
}

// TestObserveTrigger exercises the cooldown and readiness gating of
// the auto trigger.
func TestObserveTrigger(t *testing.T) {
	st := NewState(Config{DriftWindow: 4, Cooldown: 1})
	old := labelsFrom(rand.New(rand.NewSource(1)), 20, map[indoor.RegionID]float64{1: 1})
	for i := 0; i < 8; i++ {
		if _, trigger := st.Observe(old, seq.LabeledSequence{}); trigger {
			t.Fatal("triggered during warmup")
		}
	}
	shifted := labelsFrom(rand.New(rand.NewSource(2)), 20, map[indoor.RegionID]float64{5: 1})
	fired := false
	for i := 0; i < 4; i++ {
		if _, trigger := st.Observe(shifted, seq.LabeledSequence{}); trigger {
			fired = true
		}
	}
	if !fired {
		t.Fatal("no trigger on a total shift")
	}
}
