// Package retrain implements the per-venue closed-loop retraining
// control plane: drift detection over the annotated stream, bounded
// sampling of labeled sequences into a training slice, shadow scoring
// of a candidate model against the incumbent on a held-out slice
// (internal/eval), and a strict-win gate deciding whether the
// candidate may be hot-swapped in. Every cycle leaves a typed audit
// Decision.
//
// The package is deliberately model-agnostic: training and inference
// enter through callbacks (TrainFunc, AnnotateFunc), so the state
// machine — triggering, sampling, splitting, gating, auditing — is
// testable without touching the Markov-network layer, and the public
// c2mn registry supplies the real trainer and the registry hot-swap
// as closures.
//
// Safety properties the gate maintains:
//
//   - A candidate that does not score strictly better (by more than
//     Config.MinWin) on the held-out slice is never installed.
//   - Holdout truth is the recorded labels. For samples the incumbent
//     labeled itself this makes the incumbent unbeatable (CA = 1), so
//     a venue fed no ground truth can never swap — self-labeled data
//     alone must not rotate models. Operator-supplied feedback (truth
//     samples) is what opens the gate.
//   - At most one cycle runs per venue at a time (ErrBusy), and a
//     swap resets the drift reference: the new model's labeling
//     distribution becomes the new normal.
package retrain

import (
	"sync"
	"time"

	"c2mn/internal/seq"
)

// Defaults applied by Config.WithDefaults.
const (
	// DefaultDriftThreshold is the PSI above which the label
	// distribution is considered drifted. 0.25 is the conventional
	// "significant shift, act" boundary of the population stability
	// index.
	DefaultDriftThreshold = 0.25
	// DefaultDriftWindow is the sliding comparison window (and the
	// frozen reference size), in emitted sequences.
	DefaultDriftWindow = 64
	// DefaultMinSamples is the smallest labeled-sample count a cycle
	// will train on.
	DefaultMinSamples = 32
	// DefaultMaxSamples bounds each labeled-sample reservoir.
	DefaultMaxSamples = 1024
	// DefaultHoldoutFrac is the fraction of samples held out for
	// shadow scoring.
	DefaultHoldoutFrac = 0.25
	// DefaultCooldown spaces drift-triggered cycles.
	DefaultCooldown = 10 * time.Minute
	// DefaultLambda is the CA trade-off used for gating, matching
	// internal/eval's paper default (λ = 0.7).
	DefaultLambda = 0.7
	// auditLogSize bounds the per-venue ring of recent decisions.
	auditLogSize = 32
)

// Config tunes one venue's retraining loop. The zero value of any
// field falls back to the package default (MinWin's zero means the
// strict "candidate CA > incumbent CA" gate with no extra margin).
type Config struct {
	// DriftThreshold is the PSI trigger level.
	DriftThreshold float64
	// DriftWindow is the sliding window length in sequences; it also
	// sizes the frozen reference histogram.
	DriftWindow int
	// MinSamples is the minimum labeled-sample count to attempt a
	// cycle; below it the cycle is skipped.
	MinSamples int
	// MaxSamples caps each sampling reservoir (stream and truth).
	MaxSamples int
	// HoldoutFrac is the held-out fraction used for shadow scoring.
	HoldoutFrac float64
	// MinWin is the extra CA margin a candidate must clear on top of
	// the incumbent's score to be installed.
	MinWin float64
	// Cooldown is the minimum spacing between drift-triggered cycles.
	Cooldown time.Duration
	// Lambda is the CA trade-off λ used to score both models.
	Lambda float64
	// Seed drives the reservoir sampling and the train/holdout split.
	Seed int64
}

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = DefaultHoldoutFrac
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.Lambda <= 0 || c.Lambda > 1 {
		c.Lambda = DefaultLambda
	}
	return c
}

// Trigger names what started a cycle.
type Trigger string

const (
	// TriggerDrift marks a cycle started by the drift detector.
	TriggerDrift Trigger = "drift"
	// TriggerManual marks an operator-requested cycle.
	TriggerManual Trigger = "manual"
)

// Outcome is the audited result of a cycle.
type Outcome string

const (
	// OutcomeSwapped: the candidate won the shadow comparison and was
	// installed.
	OutcomeSwapped Outcome = "swapped"
	// OutcomeRejected: the candidate trained and scored, but did not
	// beat the incumbent by more than MinWin; nothing changed.
	OutcomeRejected Outcome = "rejected"
	// OutcomeSkipped: the cycle stopped before training (not enough
	// labeled samples, or a degenerate split).
	OutcomeSkipped Outcome = "skipped"
	// OutcomeFailed: training, scoring or installation errored.
	OutcomeFailed Outcome = "failed"
)

// Decision is the typed audit record of one retraining cycle.
type Decision struct {
	Venue   string  `json:"venue"`
	Trigger Trigger `json:"trigger"`
	Outcome Outcome `json:"outcome"`
	// PSI is the drift index at cycle start (0 when the detector was
	// not ready or the cycle was manual before any window filled).
	PSI float64 `json:"psi,omitempty"`
	// Samples and Holdout size the training and shadow slices.
	Samples int `json:"samples"`
	Holdout int `json:"holdout"`
	// IncumbentCA and CandidateCA are the shadow scores the gate
	// compared (zero when the cycle stopped before scoring).
	IncumbentCA float64 `json:"incumbent_ca"`
	CandidateCA float64 `json:"candidate_ca"`
	// ModelHash identifies the candidate model (set once trained).
	ModelHash string `json:"model_hash,omitempty"`
	// Error carries the failure or skip reason.
	Error        string `json:"error,omitempty"`
	StartedUnix  int64  `json:"started_unix"`
	FinishedUnix int64  `json:"finished_unix"`
}

// Status is a point-in-time view of one venue's loop, surfaced by the
// serving tier's stats and admin endpoints.
type Status struct {
	// PSI is the current drift index (0 until the window fills).
	PSI float64 `json:"psi"`
	// DriftReady reports whether the reference froze and the sliding
	// window filled — i.e. PSI is meaningful.
	DriftReady bool `json:"drift_ready"`
	// StreamSamples and TruthSamples size the two reservoirs.
	StreamSamples int `json:"stream_samples"`
	TruthSamples  int `json:"truth_samples"`
	// Busy reports a cycle in flight.
	Busy bool `json:"busy"`
	// Swaps counts installed candidates; LastSwapUnix is when the
	// latest landed.
	Swaps        int64 `json:"swaps"`
	LastSwapUnix int64 `json:"last_swap_unix,omitempty"`
	// Counts aggregates cycle outcomes over the process lifetime.
	Counts map[Outcome]int64 `json:"counts"`
	// Last holds the most recent audit decisions, oldest first.
	Last []Decision `json:"last,omitempty"`
}

// State is one venue's control-loop state: the drift detector, the
// two labeled-sample reservoirs (self-labeled stream, operator truth),
// the audit log and the busy/cooldown bookkeeping. All methods are
// safe for concurrent use.
type State struct {
	cfg Config

	mu        sync.Mutex
	det       *Detector
	stream    *Reservoir // samples labeled by the incumbent model
	truth     *Reservoir // operator-supplied ground truth
	busy      bool
	lastCycle time.Time
	swaps     int64
	lastSwap  int64
	counts    map[Outcome]int64
	log       []Decision
}

// NewState builds a venue's loop state from cfg (defaults applied).
func NewState(cfg Config) *State {
	cfg = cfg.WithDefaults()
	return &State{
		cfg:    cfg,
		det:    NewDetector(cfg.DriftWindow, cfg.DriftThreshold),
		stream: NewReservoir(cfg.MaxSamples, cfg.Seed),
		truth:  NewReservoir(cfg.MaxSamples, cfg.Seed+1),
		counts: map[Outcome]int64{},
	}
}

// Config returns the state's effective (default-filled) config.
func (st *State) Config() Config { return st.cfg }

// Observe folds one annotated sequence into the loop: the labels move
// the drift detector, and the (sequence, labels) pair joins the
// stream reservoir as a self-labeled sample. It returns the current
// PSI and whether a drift-triggered cycle should start now — true
// only when the detector fired, no cycle is in flight and the
// cooldown since the last cycle has passed. The caller owns starting
// the cycle; Observe never blocks.
func (st *State) Observe(labels seq.Labels, ls seq.LabeledSequence) (psi float64, trigger bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	psi, drifted := st.det.Observe(labels)
	st.stream.Add(Sample{LS: ls})
	if !drifted || st.busy {
		return psi, false
	}
	if !st.lastCycle.IsZero() && time.Since(st.lastCycle) < st.cfg.Cooldown {
		return psi, false
	}
	return psi, true
}

// AddTruth adds operator-supplied ground-truth sequences to the truth
// reservoir and returns how many were accepted (all of them; the
// reservoir keeps a uniform sample once full).
func (st *State) AddTruth(data []seq.LabeledSequence) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range data {
		st.truth.Add(Sample{LS: data[i], Truth: true})
	}
	return len(data)
}

// Status snapshots the loop for observability.
func (st *State) Status() Status {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Status{
		PSI:           st.det.PSI(),
		DriftReady:    st.det.Ready(),
		StreamSamples: st.stream.Len(),
		TruthSamples:  st.truth.Len(),
		Busy:          st.busy,
		Swaps:         st.swaps,
		LastSwapUnix:  st.lastSwap,
		Counts:        make(map[Outcome]int64, len(st.counts)),
		Last:          append([]Decision(nil), st.log...),
	}
	for k, v := range st.counts {
		s.Counts[k] = v
	}
	return s
}

// Swaps returns how many candidates this loop installed and when the
// last one landed (unix seconds, 0 if never).
func (st *State) Swaps() (count int64, lastUnix int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.swaps, st.lastSwap
}

// record appends a finished decision to the audit ring and counters.
func (st *State) record(d Decision) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.counts[d.Outcome]++
	st.log = append(st.log, d)
	if len(st.log) > auditLogSize {
		st.log = st.log[len(st.log)-auditLogSize:]
	}
}
