package retrain

import (
	"errors"
	"fmt"
	"time"

	"c2mn/internal/eval"
	"c2mn/internal/seq"
)

// Typed failures of Run; the serving tier maps them onto HTTP codes.
var (
	// ErrBusy: a cycle for this venue is already in flight. At most
	// one trains at a time, so a drift trigger landing mid-cycle is
	// dropped rather than queued.
	ErrBusy = errors.New("retrain: cycle already in flight")
	// ErrSamples: fewer labeled samples than Config.MinSamples were
	// available (or the holdout split came out empty).
	ErrSamples = errors.New("retrain: not enough labeled samples")
)

// AnnotateFunc labels one positioning sequence — the incumbent's or a
// candidate's inference, closed over whatever engine configuration
// the venue serves with, so both sides of the shadow comparison run
// identical inference settings.
type AnnotateFunc func(p *seq.PSequence) (seq.Labels, error)

// Candidate is a freshly trained challenger: Annotate scores it on
// the holdout, Install hot-swaps it in (called only on a strict win),
// and Hash identifies the model in the audit record.
type Candidate struct {
	Annotate AnnotateFunc
	Install  func() error
	Hash     string
}

// TrainFunc trains a candidate on the given labeled slice. It runs
// off the serving path, on the cycle's goroutine.
type TrainFunc func(train []seq.LabeledSequence) (Candidate, error)

// Score runs annotate over every holdout sequence and accumulates the
// paper's labeling metrics against the recorded labels.
func Score(data []seq.LabeledSequence, lambda float64, annotate AnnotateFunc) (eval.Accuracy, error) {
	var c eval.Counter
	for i := range data {
		p := data[i].P
		labels, err := annotate(&p)
		if err != nil {
			return eval.Accuracy{}, fmt.Errorf("retrain: scoring %q: %w", p.ObjectID, err)
		}
		if err := c.Add(data[i].Labels, labels); err != nil {
			return eval.Accuracy{}, err
		}
	}
	return c.Result(lambda), nil
}

// Run executes one retraining cycle: snapshot the labeled samples
// (truth reservoir first, then the self-labeled stream reservoir),
// split off a holdout, train a candidate, shadow-score both models on
// the holdout, and install the candidate only when it beats the
// incumbent's CA by more than Config.MinWin. Exactly one cycle runs
// per State at a time (ErrBusy otherwise); every completed cycle —
// swapped, rejected, skipped or failed — is recorded in the audit log
// and counted in Status. The returned Decision describes this cycle
// even when err != nil (except for ErrBusy, which records nothing).
func (st *State) Run(venue string, trigger Trigger, incumbent AnnotateFunc, train TrainFunc) (Decision, error) {
	st.mu.Lock()
	if st.busy {
		st.mu.Unlock()
		return Decision{}, ErrBusy
	}
	st.busy = true
	st.lastCycle = time.Now()
	samples := append(st.truth.Snapshot(), st.stream.Snapshot()...)
	psi := st.det.PSI()
	cfg := st.cfg
	st.mu.Unlock()

	d := Decision{
		Venue: venue, Trigger: trigger, PSI: psi,
		StartedUnix: time.Now().Unix(),
	}
	finish := func(outcome Outcome, err error) (Decision, error) {
		d.Outcome = outcome
		if err != nil {
			d.Error = err.Error()
		}
		d.FinishedUnix = time.Now().Unix()
		st.mu.Lock()
		st.busy = false
		st.mu.Unlock()
		st.record(d)
		return d, err
	}

	if len(samples) < cfg.MinSamples {
		return finish(OutcomeSkipped, fmt.Errorf("%w: have %d, need %d", ErrSamples, len(samples), cfg.MinSamples))
	}
	data := make([]seq.LabeledSequence, len(samples))
	for i := range samples {
		data[i] = samples[i].LS
	}
	trainSet, holdout := eval.Split(data, 1-cfg.HoldoutFrac, cfg.Seed)
	if len(trainSet) == 0 || len(holdout) == 0 {
		return finish(OutcomeSkipped, fmt.Errorf("%w: degenerate split (%d train, %d holdout)", ErrSamples, len(trainSet), len(holdout)))
	}
	d.Samples, d.Holdout = len(trainSet), len(holdout)

	incAcc, err := Score(holdout, cfg.Lambda, incumbent)
	if err != nil {
		return finish(OutcomeFailed, fmt.Errorf("incumbent: %w", err))
	}
	d.IncumbentCA = incAcc.CA

	cand, err := train(trainSet)
	if err != nil {
		return finish(OutcomeFailed, fmt.Errorf("training candidate: %w", err))
	}
	d.ModelHash = cand.Hash

	candAcc, err := Score(holdout, cfg.Lambda, cand.Annotate)
	if err != nil {
		return finish(OutcomeFailed, fmt.Errorf("candidate: %w", err))
	}
	d.CandidateCA = candAcc.CA

	if !(candAcc.CA > incAcc.CA+cfg.MinWin) {
		return finish(OutcomeRejected, nil)
	}
	if err := cand.Install(); err != nil {
		return finish(OutcomeFailed, fmt.Errorf("installing candidate: %w", err))
	}
	st.mu.Lock()
	st.swaps++
	st.lastSwap = time.Now().Unix()
	// The swapped-in model defines the new normal: rebuild the drift
	// reference from its own labeling, and drop the old model's
	// self-labeled samples — they are no longer what the live model
	// would say.
	st.det.Reset()
	st.stream.Clear()
	st.mu.Unlock()
	return finish(OutcomeSwapped, nil)
}
