// Package lru provides a small, allocation-light bounded LRU map used
// by the query-result caches in both serving tiers (the per-venue
// engine cache and the router's scatter partial cache).
//
// A Cache is NOT safe for concurrent use; callers guard it with their
// own lock, which lets them batch a lookup, a counter update and an
// insert under one critical section instead of paying three.
package lru

// entry is one cache slot, linked into the recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V] // recency neighbours; head is most recent
}

// Cache is a bounded map with least-recently-used eviction. The zero
// value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	cap        int
	items      map[K]*entry[K, V]
	head, tail *entry[K, V]
}

// New returns an empty cache holding at most capacity entries.
// capacity < 1 is treated as 1.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		items: make(map[K]*entry[K, V], capacity),
	}
}

// Get returns the value stored under key and marks it most recently
// used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put stores val under key, replacing any previous value, and marks the
// entry most recently used. When the insert would exceed the capacity
// the least-recently-used entry is evicted.
func (c *Cache[K, V]) Put(key K, val V) {
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	if len(c.items) >= c.cap {
		c.evictOldest()
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
}

// Len returns the number of stored entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Purge drops every entry.
func (c *Cache[K, V]) Purge() {
	clear(c.items)
	c.head, c.tail = nil, nil
}

// moveToFront relinks e at the head of the recency list.
func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links a detached entry at the head.
func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink detaches e from the recency list.
func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictOldest drops the least-recently-used entry.
func (c *Cache[K, V]) evictOldest() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.items, e.key)
}
