package lru

import "testing"

func TestGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestReplaceKeepsLen(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replace lost: Get(a) = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a: b is now oldest
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 3) // replacing refreshes too
	c.Put("c", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived: replacing a should have refreshed it")
	}
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("Get(a) = %d", v)
	}
}

func TestPurge(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit after Purge")
	}
	// The list is reusable after a purge.
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) after Purge = %d, %v", v, ok)
	}
}

func TestCapacityClamp(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Fatalf("capacity-0 cache holds %d entries, want 1", c.Len())
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestChurnConsistency(t *testing.T) {
	const capacity = 8
	c := New[int, int](capacity)
	for i := 0; i < 1000; i++ {
		c.Put(i%13, i)
		if c.Len() > capacity {
			t.Fatalf("cache grew past capacity: %d", c.Len())
		}
		if v, ok := c.Get(i % 13); !ok || v != i {
			t.Fatalf("just-put key %d: %d, %v", i%13, v, ok)
		}
	}
}
