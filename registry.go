package c2mn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"c2mn/internal/query"
	"c2mn/internal/snapshot"
)

// VenueRegistry hosts many independently loaded venues — each an
// immutable (Space, model) pair wrapped in its own Engine — and routes
// annotation, streaming ingestion and the top-k queries by venue ID.
// It is the sharding boundary of a multi-building deployment: every
// venue owns its model, its streaming segmentation state (keyed by
// (venue, object)) and its live m-semantics store with a per-shard
// lock, so traffic against one venue never contends with another.
//
// Venues are hot-(re)loadable: Load deserialises a model saved with
// Annotator.Save and atomically swaps it in under its venue ID —
// in-flight calls against the previous engine complete on the old
// model, new calls see the new one. Unload removes a venue.
//
// The registry itself is safe for concurrent use. Registry-wide
// settings come from RegistryOptions: WithVenueDefaults (engine
// options applied to every venue), WithVenueBudget (a shared bound on
// fleet-wide inference concurrency) and WithMaxVenues.
type VenueRegistry struct {
	mu        sync.RWMutex
	venues    map[string]*Engine
	venueOpts map[string][]Option // per-venue options from Register, replayed on retrain swaps
	defaults  []Option
	budget    chan struct{}
	maxVenues int
	retrain   *retrainManager // nil unless WithRetrainPolicy
}

// NewVenueRegistry returns an empty registry.
func NewVenueRegistry(opts ...RegistryOption) (*VenueRegistry, error) {
	vr := &VenueRegistry{venues: map[string]*Engine{}}
	for _, opt := range opts {
		if err := opt(vr); err != nil {
			return nil, err
		}
	}
	return vr, nil
}

// Register wraps a trained annotator in a fresh Engine and installs it
// under venueID, replacing (hot-reloading) any engine already serving
// that ID. Engine options apply in order: registry defaults first,
// then opts; the venue ID and the registry's shared inference budget
// are always set last. The new engine starts with empty streaming
// state and an empty live store.
func (vr *VenueRegistry) Register(venueID string, a *Annotator, opts ...Option) (*Engine, error) {
	if venueID == "" {
		return nil, errors.New("c2mn: venue ID must not be empty")
	}
	e, err := vr.buildEngine(venueID, a, opts)
	if err != nil {
		return nil, err
	}
	vr.mu.Lock()
	defer vr.mu.Unlock()
	old, reload := vr.venues[venueID]
	if !reload && vr.maxVenues > 0 && len(vr.venues) >= vr.maxVenues {
		return nil, fmt.Errorf("%w: limit %d reached loading %q", ErrTooManyVenues, vr.maxVenues, venueID)
	}
	if reload {
		vr.spliceGeneration(old, e)
	}
	vr.venues[venueID] = e
	if vr.venueOpts == nil {
		vr.venueOpts = map[string][]Option{}
	}
	vr.venueOpts[venueID] = opts
	if vr.retrain != nil && reload {
		// An operator reload replaces the model out of band: the drift
		// reference and self-labeled samples describe the old one.
		vr.retrain.reset(venueID)
	}
	return e, nil
}

// buildEngine assembles a venue engine under the registry's layered
// options: registry defaults first, then the per-venue opts, then the
// always-set venue identity, shared budget and — when retraining is
// enabled — the retrain loop's labeled-sequence tap. Register and the
// retrain swap path both build through here, so a retrained
// replacement serves under exactly the configuration its venue was
// registered with.
func (vr *VenueRegistry) buildEngine(venueID string, a *Annotator, opts []Option) (*Engine, error) {
	all := make([]Option, 0, len(vr.defaults)+len(opts)+3)
	all = append(all, vr.defaults...)
	all = append(all, opts...)
	all = append(all, WithVenueID(venueID), withBudget(vr.budget))
	if vr.retrain != nil {
		all = append(all, withLabeledSink(vr.retrain.sink(venueID)))
	}
	e, err := NewEngine(a, all...)
	if err != nil {
		return nil, fmt.Errorf("c2mn: venue %q: %w", venueID, err)
	}
	return e, nil
}

// spliceGeneration seeds a replacement engine's store generation past
// everything the engine it replaces ever published (current generation
// plus query.GenerationJump headroom). Generations are venue-scoped
// cache validators on the HTTP tiers — ETags, router partials, watch
// resume labels — and a fresh engine restarts its counter at zero, so
// without the splice a client holding an ETag from the old engine
// could revalidate against the new one, collide on a small generation
// number, and be told its stale answer is current. Called with vr.mu
// held, before the replacement becomes visible.
func (vr *VenueRegistry) spliceGeneration(old, next *Engine) {
	next.store.SeedGeneration(old.StoreGeneration() + query.GenerationJump)
}

// Load restores an annotator from a model saved with Annotator.Save
// and registers it under venueID (see Register for the reload and
// option semantics).
func (vr *VenueRegistry) Load(venueID string, space *Space, model io.Reader, opts ...Option) (*Engine, error) {
	a, err := Load(space, model)
	if err != nil {
		return nil, fmt.Errorf("c2mn: venue %q: %w", venueID, err)
	}
	return vr.Register(venueID, a, opts...)
}

// Unload removes a venue. In-flight calls against its engine complete;
// subsequent routed calls fail with ErrUnknownVenue.
func (vr *VenueRegistry) Unload(venueID string) error {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	if _, ok := vr.venues[venueID]; !ok {
		return unknownVenue(venueID)
	}
	delete(vr.venues, venueID)
	delete(vr.venueOpts, venueID)
	if vr.retrain != nil {
		vr.retrain.reset(venueID)
	}
	return nil
}

// Engine returns the venue's current engine, or ErrUnknownVenue.
func (vr *VenueRegistry) Engine(venueID string) (*Engine, error) {
	vr.mu.RLock()
	defer vr.mu.RUnlock()
	e, ok := vr.venues[venueID]
	if !ok {
		return nil, unknownVenue(venueID)
	}
	return e, nil
}

// Venues returns the loaded venue IDs, sorted.
func (vr *VenueRegistry) Venues() []string {
	vr.mu.RLock()
	defer vr.mu.RUnlock()
	out := make([]string, 0, len(vr.venues))
	for id := range vr.venues {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of loaded venues.
func (vr *VenueRegistry) Len() int {
	vr.mu.RLock()
	defer vr.mu.RUnlock()
	return len(vr.venues)
}

// engines snapshots the venue map for iteration outside the lock.
func (vr *VenueRegistry) engines() map[string]*Engine {
	vr.mu.RLock()
	defer vr.mu.RUnlock()
	out := make(map[string]*Engine, len(vr.venues))
	for id, e := range vr.venues {
		out[id] = e
	}
	return out
}

// AnnotateCtx routes a one-shot annotation to the venue's engine.
func (vr *VenueRegistry) AnnotateCtx(ctx context.Context, venueID string, p *PSequence) (Labels, MSSequence, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return Labels{}, MSSequence{}, err
	}
	return e.AnnotateCtx(ctx, p)
}

// AnnotateAllCtx routes a batch annotation to the venue's engine.
func (vr *VenueRegistry) AnnotateAllCtx(ctx context.Context, venueID string, ps []PSequence) ([]MSSequence, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return nil, err
	}
	return e.AnnotateAllCtx(ctx, ps)
}

// Feed routes one positioning record to the venue's stream of
// objectID. The (venue, object) pair keys the stream, so the same
// object ID active in two venues segments independently.
func (vr *VenueRegistry) Feed(venueID, objectID string, r Record) error {
	e, err := vr.Engine(venueID)
	if err != nil {
		return err
	}
	return e.Feed(objectID, r)
}

// FeedAll routes a record batch to the venue's stream of objectID and
// reports how many completed sequences it caused to be emitted.
func (vr *VenueRegistry) FeedAll(venueID, objectID string, records []Record) (int, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return 0, err
	}
	return e.FeedAll(objectID, records)
}

// Flush completes one venue's open stream fragments.
func (vr *VenueRegistry) Flush(venueID string) error {
	e, err := vr.Engine(venueID)
	if err != nil {
		return err
	}
	return e.Flush()
}

// FlushAll flushes every venue, in venue-ID order; per-venue errors
// are joined, and every venue is flushed even when an earlier one
// fails.
func (vr *VenueRegistry) FlushAll() error {
	engines := vr.engines()
	ids := make([]string, 0, len(engines))
	for id := range engines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if err := engines[id].Flush(); err != nil {
			errs = append(errs, fmt.Errorf("venue %q: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// TopKPopularRegions answers a TkPRQ over one venue's live store. It
// is a compatibility wrapper over Query with venue scope; note that
// under the unified semantics an empty q means every region of the
// venue and k <= 0 means DefaultQueryK.
func (vr *VenueRegistry) TopKPopularRegions(venueID string, q []RegionID, w Window, k int) ([]RegionCount, error) {
	res, err := vr.Query(context.Background(), Query{
		Kind: QueryPopularRegions, Scope: ScopeVenue, Venues: []string{venueID},
		Regions: q, Window: &w, K: k,
	})
	if err != nil {
		return nil, err
	}
	return res.Regions, nil
}

// TopKFrequentPairs answers a TkFRPQ over one venue's live store. It
// is a compatibility wrapper over Query with venue scope; the empty-q
// and k defaults of TopKPopularRegions apply here too.
func (vr *VenueRegistry) TopKFrequentPairs(venueID string, q []RegionID, w Window, k int) ([]PairCount, error) {
	res, err := vr.Query(context.Background(), Query{
		Kind: QueryFrequentPairs, Scope: ScopeVenue, Venues: []string{venueID},
		Regions: q, Window: &w, K: k,
	})
	if err != nil {
		return nil, err
	}
	return res.Pairs, nil
}

// snapshotExt is the on-disk suffix of per-venue snapshot files.
const snapshotExt = ".c2mnsnap"

// SnapshotPath returns the file a venue's snapshot lives at inside a
// snapshot directory. The venue ID is path-escaped, so IDs containing
// separators or dots cannot climb out of the directory.
func SnapshotPath(dir, venueID string) string {
	return filepath.Join(dir, url.PathEscape(venueID)+snapshotExt)
}

// SnapshotVenue captures one venue's live serving state — open stream
// fragments, the live m-semantics store and the pipeline counters —
// into SnapshotPath(dir, venueID), and returns that path. The capture
// takes the shard's read locks only briefly; serving continues
// throughout. The write is atomic (temp file, fsync, rename), so a
// crash mid-snapshot leaves the previous snapshot intact and a reader
// never observes a torn file.
func (vr *VenueRegistry) SnapshotVenue(venueID, dir string) (string, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return "", err
	}
	path := SnapshotPath(dir, venueID)
	if err := snapshot.WriteFile(path, e.snapshotFile(time.Now().Unix())); err != nil {
		return "", fmt.Errorf("c2mn: snapshot venue %q: %w", venueID, err)
	}
	return path, nil
}

// SnapshotAll snapshots every loaded venue into dir, in venue-ID
// order. Every venue is attempted even when an earlier one fails; the
// per-venue errors are joined. It returns the paths written.
func (vr *VenueRegistry) SnapshotAll(dir string) ([]string, error) {
	var paths []string
	var errs []error
	for _, id := range vr.Venues() {
		p, err := vr.SnapshotVenue(id, dir)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		paths = append(paths, p)
	}
	return paths, errors.Join(errs...)
}

// RestoreVenue restores one venue's state from SnapshotPath(dir,
// venueID). The venue must already be loaded (the snapshot holds
// serving state, not the model) and must not have ingested traffic
// yet. Failure modes are typed: os.ErrNotExist when no snapshot file
// exists, ErrSnapshotVersion / ErrSnapshotCorrupt for unreadable
// files, ErrSnapshotMismatch when the snapshot was captured from a
// different venue identity (space, model — e.g. after a retrain — or
// η/ψ/retention configuration), and ErrSnapshotConflict when the
// venue already has live state. The venue is unchanged on failure.
func (vr *VenueRegistry) RestoreVenue(venueID, dir string) error {
	e, err := vr.Engine(venueID)
	if err != nil {
		return err
	}
	f, err := snapshot.ReadFile(SnapshotPath(dir, venueID))
	if err != nil {
		return wrapSnapshotError(err)
	}
	return e.restoreFile(f)
}

// RestoreAll warm-starts the registry from a snapshot directory: every
// loaded venue with a snapshot file in dir is restored; venues without
// one start cold, silently. It returns the venue IDs restored; venues
// whose restore failed (corrupt file, identity mismatch, conflict)
// contribute joined errors and keep their current — typically cold —
// state, so one bad snapshot never blocks the rest of the fleet from
// warming up.
func (vr *VenueRegistry) RestoreAll(dir string) ([]string, error) {
	var restored []string
	var errs []error
	for _, id := range vr.Venues() {
		err := vr.RestoreVenue(id, dir)
		switch {
		case err == nil:
			restored = append(restored, id)
		case errors.Is(err, os.ErrNotExist):
			// No snapshot for this venue: a cold start, not a failure.
		default:
			errs = append(errs, fmt.Errorf("venue %q: %w", id, err))
		}
	}
	return restored, errors.Join(errs...)
}

// Sequences returns a snapshot of one venue's live ms-sequences.
func (vr *VenueRegistry) Sequences(venueID string) ([]MSSequence, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return nil, err
	}
	return e.Sequences(), nil
}

// Stats reports every venue's streaming pipeline counters, keyed by
// venue ID.
func (vr *VenueRegistry) Stats() map[string]EngineStats {
	engines := vr.engines()
	out := make(map[string]EngineStats, len(engines))
	for id, e := range engines {
		out[id] = e.Stats()
	}
	return out
}
