// Package c2mn annotates indoor mobility data with mobility semantics:
// given an object's raw indoor positioning records, it infers where
// the object was (semantic region), when (time period), and what it
// was doing (stay or pass). It implements the coupled conditional
// Markov network (C2MN) of Li, Lu, Cheema, Shou and Chen, "Indoor
// Mobility Semantics Annotation Using Coupled Conditional Markov
// Networks", ICDE 2020.
//
// The typical offline flow is:
//
//  1. model the venue with a Builder (partitions, doors, regions) or
//     generate one with GenerateBuilding,
//  2. train an Annotator on labeled sequences with Train,
//  3. feed it positioning sequences to obtain labels and merged
//     m-semantics,
//  4. analyse the m-semantics, e.g. with the top-k queries
//     TopKPopularRegions and TopKFrequentPairs.
//
// For serving, wrap the trained Annotator in an Engine: it adds
// context-aware batch annotation on a bounded worker pool
// (AnnotateAllCtx + WithWorkers), streaming ingestion with online
// η-gap segmentation (Feed/Flush — record-by-record ingestion that
// segments exactly as batch Preprocess does), and a live m-semantics
// store whose TopKPopularRegions/TopKFrequentPairs answer from an
// incrementally maintained time-bucketed index while records are
// still arriving. A multi-building deployment hosts many venues in a
// VenueRegistry — independently loaded (Space, model) shards, hot
// reloadable via Annotator.Save/Load, with all traffic routed by
// venue ID. Queries go through one composable request type: build a
// Query (kind, region filter, window, k, and a scope of one venue, an
// explicit venue list, or the whole fleet) and execute it with
// VenueRegistry.Query, which fans fleet scans out across the venue
// shards in parallel and merges the counts exactly; the TopK* methods
// remain as thin compatibility wrappers. Cancellation and failure
// modes are typed: ErrCanceled, ErrEmptySequence, ErrNoModel,
// ErrUnknownVenue, ErrModelVersion, ErrInvalidQuery, and — when
// WithFeedQueueTimeout bounds a saturated venue's wait for budget
// slots — ErrBacklog. cmd/msserve exposes the registry over a
// versioned (/v1) HTTP surface.
//
// Venue serving state is durable: SnapshotVenue/SnapshotAll capture a
// shard's live store, open stream fragments and counters into the
// versioned c2mn-snapshot format (atomic fsync+rename files), and
// RestoreVenue/RestoreAll warm-start a freshly loaded venue from them
// — answers byte-identical to the captured shard, streams continuing
// where they left off. Restores are guarded by space/model hashes and
// the engine configuration, with typed ErrSnapshotVersion,
// ErrSnapshotCorrupt, ErrSnapshotMismatch and ErrSnapshotConflict.
//
// Annotation runs on pooled, reusable inference workspaces with
// incremental (Markov-blanket delta) scoring, so steady-state
// annotation allocates only its results; AnnotateOptions and
// WithInferOptions expose the inference tuning (ICM sweeps, annealed
// restart, seed).
//
// The heavy lifting lives in the internal packages (geometry, R-tree,
// indoor topology and MIWD distances, st-DBSCAN, L-BFGS, the C2MN
// model with its alternate learning algorithm, baselines, simulator
// and the experiment drivers); this package is the stable surface.
package c2mn

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"c2mn/internal/baseline"
	"c2mn/internal/core"
	"c2mn/internal/features"
	"c2mn/internal/indoor"
	"c2mn/internal/query"
	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

// Re-exported spatial types.
type (
	// Space is an immutable indoor venue.
	Space = indoor.Space
	// Builder assembles a Space from partitions, doors and regions.
	Builder = indoor.Builder
	// Location is an indoor position (planar point + floor).
	Location = indoor.Location
	// RegionID identifies a semantic region.
	RegionID = indoor.RegionID
	// PartitionID identifies an indoor partition.
	PartitionID = indoor.PartitionID
)

// Re-exported sequence types.
type (
	// Record is a positioning record θ(l, t).
	Record = seq.Record
	// PSequence is a positioning sequence.
	PSequence = seq.PSequence
	// Labels holds per-record region and event labels.
	Labels = seq.Labels
	// LabeledSequence couples a p-sequence with labels.
	LabeledSequence = seq.LabeledSequence
	// Event is a mobility event (Stay or Pass).
	Event = seq.Event
	// MSemantics is one (region, period, event) triple.
	MSemantics = seq.MSemantics
	// MSSequence is an object's m-semantics sequence.
	MSSequence = seq.MSSequence
	// Dataset is a labeled corpus.
	Dataset = seq.Dataset
)

// Re-exported simulator types.
type (
	// BuildingSpec describes a procedural venue.
	BuildingSpec = sim.BuildingSpec
	// MobilitySpec describes a synthetic workload.
	MobilitySpec = sim.MobilitySpec
)

// Re-exported query types.
type (
	// Window is a query time interval.
	Window = query.Window
	// RegionCount is a TkPRQ result entry.
	RegionCount = query.RegionCount
	// PairCount is a TkFRPQ result entry.
	PairCount = query.PairCount
)

// Mobility events and sentinels.
const (
	// Stay marks a purposeful dwell in a region.
	Stay = seq.Stay
	// Pass marks merely passing through a region.
	Pass = seq.Pass
	// NoRegion marks the absence of a semantic region.
	NoRegion = indoor.NoRegion
)

// Loc builds a Location.
func Loc(x, y float64, floor int) Location { return indoor.Loc(x, y, floor) }

// NewBuilder starts a venue definition.
func NewBuilder() *Builder { return indoor.NewBuilder() }

// ReadSpace deserialises a Space written with Space.WriteJSON.
func ReadSpace(r io.Reader) (*Space, error) { return indoor.ReadJSON(r) }

// ReadDataset deserialises a Dataset written with Dataset.WriteJSON.
func ReadDataset(r io.Reader) (*Dataset, error) { return seq.ReadJSON(r) }

// GenerateBuilding procedurally generates a venue; see sim.MallBuilding,
// sim.SynthBuilding and sim.SmallBuilding for ready-made profiles.
func GenerateBuilding(spec BuildingSpec, seed int64) (*Space, error) {
	return sim.GenerateBuilding(spec, seed)
}

// GenerateMobility simulates a labeled mobility workload on a venue.
func GenerateMobility(space *Space, spec MobilitySpec, seed int64) (*Dataset, error) {
	return sim.Generate(space, spec, seed)
}

// Merge performs label-and-merge: collapsing runs of identical
// (region, event) labels into m-semantics.
func Merge(p *PSequence, labels Labels) MSSequence { return seq.Merge(p, labels) }

// Preprocess splits a raw record stream on η-gaps and drops fragments
// shorter than ψ seconds, as in the paper's data cleaning.
func Preprocess(objectID string, records []Record, eta, psi float64) []PSequence {
	return seq.Preprocess(objectID, records, eta, psi)
}

// TrainOptions tunes Train. The zero value reproduces the paper's
// real-data configuration (§V-B1): v = 15 m, σ² = 0.5, M = 800,
// max_iter = 90, E as the first-configured variable.
type TrainOptions struct {
	// V overrides the fsm uncertainty radius in meters.
	V float64
	// M overrides the number of MCMC instances per step.
	M int
	// MaxIter overrides the maximum alternate-learning steps.
	MaxIter int
	// Sigma2 overrides the Gaussian prior variance.
	Sigma2 float64
	// Seed fixes the sampling randomness.
	Seed int64
	// Exact selects the deterministic exact pseudo-likelihood trainer
	// instead of the paper's Algorithm 1.
	Exact bool
	// TuneClustering adapts the st-DBSCAN parameters to the training
	// workload's sampling rate and noise (recommended for data whose
	// profile differs from the paper's mall dataset).
	TuneClustering bool
	// UseRegionPrior enables the paper's optional fsm design: the
	// normalized historical region frequency of the training data
	// multiplies the spatial overlap.
	UseRegionPrior bool
}

// Annotator is a trained C2MN bound to its venue.
//
// Annotation runs on pooled inference workspaces: each call borrows a
// reusable (sequence-context, workspace) pair, so steady-state
// annotation allocates only the returned labels and m-semantics. The
// pool makes every Annotate* method safe for concurrent use.
type Annotator struct {
	space *indoor.Space
	model *core.Model
	ex    *features.Extractor
	pool  sync.Pool // of *inferState

	hashOnce       sync.Once // guards the lazily computed identity hashes
	spaceH, modelH string
}

// inferState bundles the per-worker reusable inference memory: the
// label-independent sequence context and the core workspace holding
// label slices, logits, feature buffers and the running score.
type inferState struct {
	ctx *features.SeqContext
	ws  *core.Workspace
}

// Train learns a C2MN from labeled sequences over a venue.
func Train(space *Space, data []LabeledSequence, opts TrainOptions) (*Annotator, error) {
	params := features.DefaultParams()
	if opts.V > 0 {
		params.V = opts.V
	}
	if opts.TuneClustering {
		params.Cluster = baseline.TuneClusterParams(data)
	}
	cfg := core.Config{
		Params:         params,
		M:              opts.M,
		MaxIter:        opts.MaxIter,
		Sigma2:         opts.Sigma2,
		Seed:           opts.Seed,
		UseRegionPrior: opts.UseRegionPrior,
	}
	var model *core.Model
	var err error
	if opts.Exact {
		model, _, err = core.TrainExact(space, data, cfg)
	} else {
		model, _, err = core.Train(space, data, cfg)
	}
	if err != nil {
		return nil, err
	}
	return newAnnotator(space, model)
}

func newAnnotator(space *Space, model *core.Model) (*Annotator, error) {
	ex, err := features.NewExtractor(space, model.Params)
	if err != nil {
		return nil, err
	}
	a := &Annotator{space: space, model: model, ex: ex}
	a.pool.New = func() any {
		return &inferState{ctx: &features.SeqContext{Ex: a.ex}, ws: core.NewWorkspace()}
	}
	return a, nil
}

// Space returns the annotator's venue.
func (a *Annotator) Space() *Space { return a.space }

// hashes returns hex SHA-256 digests of the annotator's space and
// model serialisations — the identity a venue snapshot records so it
// can refuse to restore into a venue with different geometry or a
// retrained model. Both serialisations are deterministic, so the same
// (space, model) pair always hashes the same, across processes.
func (a *Annotator) hashes() (spaceHash, modelHash string) {
	a.hashOnce.Do(func() {
		h := sha256.New()
		a.space.WriteJSON(h)
		a.spaceH = hex.EncodeToString(h.Sum(nil))
		h = sha256.New()
		a.model.WriteJSON(h)
		a.modelH = hex.EncodeToString(h.Sum(nil))
	})
	return a.spaceH, a.modelH
}

// Weights returns a copy of the learned weight vector, ordered as
// documented in internal/features.
func (a *Annotator) Weights() []float64 {
	return append([]float64(nil), a.model.Weights...)
}

// Annotate labels a p-sequence and returns both the per-record labels
// and the merged m-semantics sequence, using the default inference
// configuration.
func (a *Annotator) Annotate(p *PSequence) (Labels, MSSequence, error) {
	return a.AnnotateOpts(p, AnnotateOptions{})
}

// AnnotateOpts is Annotate with explicit inference tuning: the ICM
// sweep bound, the optional annealed restart and its seed.
func (a *Annotator) AnnotateOpts(p *PSequence, opts AnnotateOptions) (Labels, MSSequence, error) {
	st := a.pool.Get().(*inferState)
	defer a.pool.Put(st)
	return a.annotateWith(st, p, 0, 0, opts)
}

// annotateWith runs one sequence's inference on a caller-held
// inference state: whole-sequence when window == 0, windowed
// otherwise. It is the common kernel under AnnotateOpts,
// AnnotateWindowedOpts and the engine's coalesced /feed batching,
// which amortizes one pooled state across a burst of completed
// fragments.
func (a *Annotator) annotateWith(st *inferState, p *PSequence, window, overlap int, opts AnnotateOptions) (Labels, MSSequence, error) {
	if err := opts.validate(); err != nil {
		return Labels{}, MSSequence{}, err
	}
	if err := p.Validate(); err != nil {
		return Labels{}, MSSequence{}, err
	}
	var labels Labels
	if window > 0 {
		labels = st.ws.AnnotateWindowed(a.model, st.ctx, p, core.WindowOptions{
			Window: window, Overlap: overlap, Infer: opts.inferOptions(),
		})
	} else {
		st.ctx.Reset(p, nil)
		labels = st.ws.Annotate(a.model, st.ctx, opts.inferOptions())
	}
	return labels, seq.Merge(p, labels), nil
}

// AnnotateWindowed labels a long p-sequence in bounded-cost chunks of
// `window` records with `overlap` records of context on each side
// (zero values: 256/32). Suitable for day-long streams where
// whole-sequence inference would be too costly; near chunk borders the
// overlap preserves the sequential context the model needs.
func (a *Annotator) AnnotateWindowed(p *PSequence, window, overlap int) (Labels, MSSequence, error) {
	return a.AnnotateWindowedOpts(p, window, overlap, AnnotateOptions{})
}

// AnnotateWindowedOpts is AnnotateWindowed with explicit inference
// tuning for the per-chunk inference.
func (a *Annotator) AnnotateWindowedOpts(p *PSequence, window, overlap int, opts AnnotateOptions) (Labels, MSSequence, error) {
	if window <= 0 {
		window = core.DefaultWindow
	}
	st := a.pool.Get().(*inferState)
	defer a.pool.Put(st)
	return a.annotateWith(st, p, window, overlap, opts)
}

// guard checks the shared preconditions of every context-accepting
// annotation entry point: a trained model (ErrNoModel), a live context
// (ErrCanceled) and a non-empty sequence (ErrEmptySequence).
func (a *Annotator) guard(ctx context.Context, p *PSequence) error {
	if a == nil || a.model == nil {
		return ErrNoModel
	}
	if err := ctx.Err(); err != nil {
		return canceled(err)
	}
	if p.Len() == 0 {
		return ErrEmptySequence
	}
	return nil
}

// AnnotateCtx is Annotate with cancellation and typed errors: it
// returns an error wrapping ErrCanceled when ctx is done, and
// ErrEmptySequence for a sequence with no records. Cancellation is
// observed before inference starts; a sequence whose inference is
// already underway runs to completion.
func (a *Annotator) AnnotateCtx(ctx context.Context, p *PSequence) (Labels, MSSequence, error) {
	if err := a.guard(ctx, p); err != nil {
		return Labels{}, MSSequence{}, err
	}
	return a.Annotate(p)
}

// AnnotateWindowedCtx is AnnotateWindowed with the same cancellation
// and typed-error contract as AnnotateCtx.
func (a *Annotator) AnnotateWindowedCtx(ctx context.Context, p *PSequence, window, overlap int) (Labels, MSSequence, error) {
	if err := a.guard(ctx, p); err != nil {
		return Labels{}, MSSequence{}, err
	}
	return a.AnnotateWindowed(p, window, overlap)
}

// AnnotateAll annotates a batch of sequences on a worker pool sized to
// GOMAXPROCS and returns their ms-sequences in input order. An empty
// sequence in the batch fails with ErrEmptySequence. Use an Engine
// with WithWorkers to bound the pool, or AnnotateAllCtx for
// cancellation.
func (a *Annotator) AnnotateAll(ps []PSequence) ([]MSSequence, error) {
	return a.annotateAll(context.Background(), ps, 0)
}

// AnnotateAllCtx is AnnotateAll with cancellation: annotation stops
// promptly when ctx is done — between sequences, not within one — and
// the returned error wraps ErrCanceled. Output order is deterministic
// — out[i] corresponds to ps[i] — for any pool size.
func (a *Annotator) AnnotateAllCtx(ctx context.Context, ps []PSequence) ([]MSSequence, error) {
	return a.annotateAll(ctx, ps, 0)
}

// annotateAll runs the batch through whole-sequence inference; see
// annotateAllFunc for the pool semantics.
func (a *Annotator) annotateAll(ctx context.Context, ps []PSequence, workers int) ([]MSSequence, error) {
	return a.annotateAllFunc(ctx, ps, workers, func(p *PSequence) (Labels, MSSequence, error) {
		return a.Annotate(p)
	})
}

// annotateAllFunc runs the batch on a bounded worker pool, annotating
// each sequence with annotate. workers <= 0 means GOMAXPROCS.
// Sequences are handed to workers by index and results written to
// their input slots, so output ordering never depends on scheduling.
// The first error (lowest sequence index) wins; cancellation is
// reported only when no sequence failed first.
func (a *Annotator) annotateAllFunc(ctx context.Context, ps []PSequence, workers int, annotate func(*PSequence) (Labels, MSSequence, error)) ([]MSSequence, error) {
	if a == nil || a.model == nil {
		return nil, ErrNoModel
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}
	out := make([]MSSequence, len(ps))
	if len(ps) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	if workers == 1 {
		for i := range ps {
			if err := ctx.Err(); err != nil {
				return nil, canceled(err)
			}
			if ps[i].Len() == 0 {
				return nil, fmt.Errorf("c2mn: sequence %d: %w", i, ErrEmptySequence)
			}
			_, ms, err := annotate(&ps[i])
			if err != nil {
				return nil, fmt.Errorf("c2mn: sequence %d: %w", i, err)
			}
			out[i] = ms
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = len(ps)
		firstErr error
	)
	next.Store(-1)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		halt()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ps) {
					return
				}
				select {
				case <-ctx.Done():
					halt()
					return
				case <-stop:
					return
				default:
				}
				if ps[i].Len() == 0 {
					record(i, fmt.Errorf("c2mn: sequence %d: %w", i, ErrEmptySequence))
					return
				}
				_, ms, err := annotate(&ps[i])
				if err != nil {
					record(i, fmt.Errorf("c2mn: sequence %d: %w", i, err))
					return
				}
				out[i] = ms
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	return out, nil
}

// Save serialises the annotator's model (the venue is saved separately
// with Space.WriteJSON). The file carries a versioned header, so an
// old binary refuses a future format instead of misreading it.
func (a *Annotator) Save(w io.Writer) error { return a.model.WriteJSON(w) }

// Load restores an annotator from a saved model and its venue. Models
// written by a newer format version fail with ErrModelVersion;
// headerless files from before the header existed still load.
func Load(space *Space, r io.Reader) (*Annotator, error) {
	model, err := core.ReadModelJSON(r)
	if err != nil {
		if errors.Is(err, core.ErrModelVersion) {
			return nil, fmt.Errorf("%w: %w", ErrModelVersion, err)
		}
		return nil, err
	}
	return newAnnotator(space, model)
}

// TopKPopularRegions answers a TkPRQ over annotated m-semantics.
func TopKPopularRegions(mss []MSSequence, q []RegionID, w Window, k int) []RegionCount {
	return query.TopKPopularRegions(mss, q, w, k)
}

// TopKFrequentPairs answers a TkFRPQ over annotated m-semantics.
func TopKFrequentPairs(mss []MSSequence, q []RegionID, w Window, k int) []PairCount {
	return query.TopKFrequentPairs(mss, q, w, k)
}
