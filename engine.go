package c2mn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"c2mn/internal/lru"
	"c2mn/internal/query"
	"c2mn/internal/seq"
	"c2mn/internal/snapshot"
)

// Engine is the serving surface of the package: a trained Annotator
// bound to its venue, plus the machinery a long-running service needs
// around it — a bounded worker pool for batch annotation, streaming
// ingestion with online η-gap segmentation, and a live m-semantics
// store the top-k queries can be answered from while records are still
// arriving.
//
// An Engine is safe for concurrent use. Batch entry points
// (AnnotateCtx, AnnotateAllCtx) are stateless; the streaming entry
// points (Feed, FeedAll, Flush) share per-object segmentation state
// and the live store. Records of one object must be fed in
// timestamp order; different objects may be fed concurrently and
// interleaved freely.
type Engine struct {
	ann         *Annotator
	venue       string
	workers     int
	eta, psi    float64
	window      int
	overlap     int
	infer       AnnotateOptions
	onSeq       func(MSSequence)
	labeledSink func(LabeledSequence) // retrain-loop tap (see withLabeledSink)
	retention   float64
	budget      chan struct{} // optional shared inference budget (see WithVenueBudget)
	feedTimeout time.Duration // bound on streaming-path budget waits (see WithFeedQueueTimeout)
	store       *query.Store
	notifier    func(venue string, gen uint64) // change-feed signal (see WithChangeNotifier)
	notified    atomic.Int64                   // generation-move signals delivered to the notifier

	mu      sync.Mutex // guards streams and fed
	streams *seq.StreamSet
	fed     int64

	// Coalesced /feed micro-batching (see annotateCoalesced): feedMu
	// guards the burst queue and the leadership flag.
	feedMu     sync.Mutex
	feedQ      []*feedJob
	feedLeader bool

	emitted atomic.Int64
	batches atomic.Int64 // leader drains, i.e. pooled-state acquisitions on the feed path

	// Generation-keyed query result cache (see queryCounts): a bounded
	// per-venue LRU of memoized top-k answers. Entries carry the store
	// generation they were computed at; a moved generation never
	// matches, so invalidation needs no bookkeeping on the write path.
	qcacheMu    sync.Mutex
	qcache      *lru.Cache[string, cachedAnswer]
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheRevals atomic.Int64 // HTTP 304s served off the generation validator
}

// cachedAnswer is one memoized query result plus the store generation
// it was computed at (captured atomically with the counts).
type cachedAnswer struct {
	gen     uint64
	regions []RegionCount
	pairs   []PairCount
}

// queryCacheEntries bounds the per-venue result cache. Dashboards poll
// a handful of distinct (kind, regions, window, k) shapes per venue;
// 256 covers them with room for ad-hoc queries without letting a
// querier with unbounded distinct windows grow the cache.
const queryCacheEntries = 256

// feedJob is one completed stream fragment waiting in the coalescing
// queue; done receives its annotation result exactly once.
type feedJob struct {
	p    *PSequence
	done chan feedResult
}

type feedResult struct {
	labels Labels
	ms     MSSequence
	err    error
}

// NewEngine wraps a trained annotator in an Engine. It returns
// ErrNoModel when the annotator is nil or has no model behind it.
func NewEngine(a *Annotator, opts ...Option) (*Engine, error) {
	if a == nil || a.model == nil {
		return nil, ErrNoModel
	}
	e := &Engine{
		ann: a,
		eta: DefaultEta,
		psi: DefaultPsi,
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	e.streams = seq.NewStreamSet(e.eta, e.psi)
	e.store = query.NewStore(e.retention)
	if e.notifier != nil {
		fn := e.notifier
		e.store.OnChange(func(gen uint64) {
			e.notified.Add(1)
			fn(e.venue, gen)
		})
	}
	e.qcache = lru.New[string, cachedAnswer](queryCacheEntries)
	return e, nil
}

// Annotator returns the wrapped annotator.
func (e *Engine) Annotator() *Annotator { return e.ann }

// Space returns the engine's venue geometry.
func (e *Engine) Space() *Space { return e.ann.Space() }

// VenueID returns the venue identifier set with WithVenueID — the
// engine's shard name inside a VenueRegistry — or "" for a
// single-venue engine.
func (e *Engine) VenueID() string { return e.venue }

// acquire takes one slot of the shared inference budget, waiting
// until one frees or ctx is canceled. A nil budget acquires nothing.
func (e *Engine) acquire(ctx context.Context) error {
	if e.budget == nil {
		return nil
	}
	select {
	case e.budget <- struct{}{}:
		return nil
	case <-ctx.Done():
		return canceled(ctx.Err())
	}
}

// release returns an acquired budget slot.
func (e *Engine) release() {
	if e.budget != nil {
		<-e.budget
	}
}

// infer applies the engine's configured inference to one sequence:
// AnnotateWindowed when WithWindowing is set, whole-sequence inference
// otherwise, both under the WithInferOptions tuning. Every Engine path
// — single, batch and streaming — funnels through here so they cannot
// diverge. Callers hold a budget slot (annotate / annotateCtx).
func (e *Engine) inferSeq(p *PSequence) (Labels, MSSequence, error) {
	if e.window > 0 {
		return e.ann.AnnotateWindowedOpts(p, e.window, e.overlap, e.infer)
	}
	return e.ann.AnnotateOpts(p, e.infer)
}

// annotateCoalesced is the streaming-path inference with micro-batch
// coalescing: fragments completed by concurrent Feed calls while one
// inference is underway queue up, and the goroutine holding the
// (budget slot, pooled inference state) pair — the burst leader —
// drains them all under that single acquisition before releasing it.
// Under production-shaped concurrency this amortizes the per-sequence
// budget wait, pool round-trip and workspace/context setup across the
// burst while the shared geometry cache stays hot; an idle engine
// degenerates to exactly one acquisition per fragment, and each
// caller still returns only when its own fragment is annotated.
//
// The budget slot is waited for without a caller context (stream
// fragments must not be dropped because one HTTP client went away) and
// held for the drain only. The wait is unbounded by default;
// WithFeedQueueTimeout bounds it, so a venue whose backlog outgrows
// the fleet budget fails fast with ErrBacklog instead of wedging its
// Feed callers — a failed wait fails the fragments queued at that
// moment, and the next burst retries with a fresh wait.
func (e *Engine) annotateCoalesced(p *PSequence) (Labels, MSSequence, error) {
	job := &feedJob{p: p, done: make(chan feedResult, 1)}
	e.feedMu.Lock()
	e.feedQ = append(e.feedQ, job)
	if e.feedLeader {
		// A leader is draining; it will pick this job up before it
		// releases its acquisition.
		e.feedMu.Unlock()
		r := <-job.done
		return r.labels, r.ms, r.err
	}
	e.feedLeader = true
	e.feedMu.Unlock()

	ctx := context.Background()
	if e.budget != nil && e.feedTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.feedTimeout)
		defer cancel()
	}
	acquireErr := e.acquire(ctx)
	var st *inferState
	if acquireErr == nil {
		st = e.ann.pool.Get().(*inferState)
		e.batches.Add(1)
	}
	for {
		e.feedMu.Lock()
		if len(e.feedQ) == 0 {
			e.feedLeader = false
			e.feedMu.Unlock()
			break
		}
		j := e.feedQ[0]
		copy(e.feedQ, e.feedQ[1:])
		e.feedQ = e.feedQ[:len(e.feedQ)-1]
		e.feedMu.Unlock()
		var r feedResult
		if acquireErr != nil {
			r.err = fmt.Errorf("%w: no inference slot within %v", ErrBacklog, e.feedTimeout)
		} else {
			r.labels, r.ms, r.err = e.ann.annotateWith(st, j.p, e.window, e.overlap, e.infer)
		}
		j.done <- r
	}
	if st != nil {
		e.ann.pool.Put(st)
	}
	if acquireErr == nil {
		e.release()
	}
	r := <-job.done
	return r.labels, r.ms, r.err
}

// annotateCtx is the request-path inference: waiting for a budget
// slot is cancellable, and cancellation is re-checked after the wait
// so a request that went dead in the queue never runs inference.
func (e *Engine) annotateCtx(ctx context.Context, p *PSequence) (Labels, MSSequence, error) {
	if err := e.acquire(ctx); err != nil {
		return Labels{}, MSSequence{}, err
	}
	defer e.release()
	if err := ctx.Err(); err != nil {
		return Labels{}, MSSequence{}, canceled(err)
	}
	return e.inferSeq(p)
}

// AnnotateCtx labels one p-sequence under the engine's configuration.
// It honours ctx cancellation (ErrCanceled) and rejects empty
// sequences (ErrEmptySequence); cancellation is observed before
// inference starts — including while queued for a shared venue budget
// slot — not within it.
func (e *Engine) AnnotateCtx(ctx context.Context, p *PSequence) (Labels, MSSequence, error) {
	if err := e.ann.guard(ctx, p); err != nil {
		return Labels{}, MSSequence{}, err
	}
	return e.annotateCtx(ctx, p)
}

// AnnotateAllCtx annotates a batch on the engine's worker pool (see
// WithWorkers), returning ms-sequences in input order under the
// engine's configured inference. On context cancellation it stops
// promptly (between sequences, or while waiting for a shared budget
// slot) and returns an error wrapping ErrCanceled; an empty sequence
// in the batch fails with ErrEmptySequence.
func (e *Engine) AnnotateAllCtx(ctx context.Context, ps []PSequence) ([]MSSequence, error) {
	return e.ann.annotateAllFunc(ctx, ps, e.workers, func(p *PSequence) (Labels, MSSequence, error) {
		return e.annotateCtx(ctx, p)
	})
}

// Feed appends one positioning record to objectID's stream. When the
// record's gap from the object's previous record exceeds η, the
// buffered fragment is completed exactly as batch Preprocess would
// complete it (same split, same ψ filter, same "#k" sub-sequence ID),
// annotated, added to the live store, and handed to the WithOnSequence
// callback. Records of one object must arrive in timestamp order; a
// record older than the object's last buffered one is rejected with an
// error and not ingested.
func (e *Engine) Feed(objectID string, r Record) error {
	_, err := e.feed(objectID, r)
	return err
}

// FeedAll feeds a slice of records of one object in order and reports
// how many completed sequences they caused to be emitted. Every record
// is ingested even when an earlier completed fragment fails annotation
// — a bad fragment must not drop the rest of a delivery batch — and
// the fragments' errors are joined.
func (e *Engine) FeedAll(objectID string, records []Record) (int, error) {
	emitted := 0
	var errs []error
	for i := range records {
		done, err := e.feed(objectID, records[i])
		if err != nil {
			errs = append(errs, err)
		}
		if done {
			emitted++
		}
	}
	return emitted, errors.Join(errs...)
}

// feed ingests one record and reports whether it completed (and
// emitted) a sequence. An out-of-order record is rejected here, where
// it is attributable, rather than buffered to poison the whole
// fragment at annotation time.
func (e *Engine) feed(objectID string, r Record) (bool, error) {
	e.mu.Lock()
	s := e.streams.Get(seq.StreamKey{Venue: e.venue, Object: objectID})
	if last, buffered := s.Last(); buffered && r.T < last {
		e.mu.Unlock()
		return false, fmt.Errorf("c2mn: stream %s: record at t=%.3f out of order (last t=%.3f)",
			e.streamName(objectID), r.T, last)
	}
	p, done := s.Feed(r)
	e.fed++
	e.mu.Unlock()
	if !done {
		return false, nil
	}
	if err := e.process(&p); err != nil {
		return false, err
	}
	return true, nil
}

// Flush completes every object's trailing fragment — as batch
// Preprocess does at end of input — and annotates and emits the
// fragments that survive the ψ filter, in object-ID order. Per-object
// stream state is released afterwards, so a long-running server that
// flushes periodically does not accumulate one entry per object ID
// ever seen; a stream that keeps feeding after a Flush restarts its
// fragment numbering at "#0", exactly like a fresh Preprocess call.
// All fragments are processed even if some fail; their errors are
// joined.
func (e *Engine) Flush() error {
	e.mu.Lock()
	done := e.streams.FlushAll()
	e.mu.Unlock()
	var errs []error
	for i := range done {
		if err := e.process(&done[i]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// streamName qualifies an object ID with the venue for error messages.
func (e *Engine) streamName(objectID string) string {
	if e.venue == "" {
		return objectID
	}
	return e.venue + "/" + objectID
}

// process annotates one completed fragment — through the coalescing
// micro-batcher — and emits its m-semantics.
func (e *Engine) process(p *PSequence) error {
	labels, ms, err := e.annotateCoalesced(p)
	if err != nil {
		return fmt.Errorf("c2mn: stream %s: %w", e.streamName(p.ObjectID), err)
	}
	e.store.Add(ms)
	e.emitted.Add(1)
	if e.onSeq != nil {
		e.onSeq(ms)
	}
	if e.labeledSink != nil {
		// The sink gets the raw inference output — the (sequence,
		// labels) pair the retrain loop's drift detector and stream
		// reservoir feed on. Same goroutine/contract as onSeq.
		e.labeledSink(LabeledSequence{P: *p, Labels: labels})
	}
	return nil
}

// queryCounts is the single per-shard query executor: every query
// entry point — the engine's TopK* compatibility wrappers and the
// per-venue fan-out behind VenueRegistry.Query — funnels through it.
// Callers resolve the unified defaults first (queryDefaults here, the
// normalized Query on the registry path), so venue-scoped and
// fleet-scoped answers cannot diverge. It answers one kind over the
// live store with counts truncated at k; pass query.AllCounts for the
// untruncated lists a cross-venue merge needs.
//
// Results are memoized in a bounded LRU keyed by the canonical query
// encoding, validated by the store generation captured atomically with
// the counts: a repeat of the same query at an unchanged generation
// returns the memoized slices without touching the index, and any
// store mutation (add, eviction, restore) moves the generation so
// stale entries can never match. Returned slices are shared between
// the cache and every caller at the same generation; all downstream
// consumers (merge, truncate, pagination, JSON encoding) only read or
// re-slice them.
//
// The returned generation is exact for the returned counts — captured
// under the store lock with them (or validated equal on a cache hit),
// never sampled before or after execution — so a freshness label built
// from it can neither understate nor overstate the bytes it stamps.
// The watch plane's Last-Event-ID resume-skip is only sound because of
// this: a label sampled racily against concurrent writes could mark
// newer bytes with an older generation and silently diverge a resumed
// subscriber.
func (e *Engine) queryCounts(kind QueryKind, regions []RegionID, w Window, k int) ([]RegionCount, []PairCount, uint64) {
	key := queryCacheKey(kind, regions, w, k)
	gen := e.store.Generation()
	e.qcacheMu.Lock()
	if ans, ok := e.qcache.Get(key); ok && ans.gen == gen {
		e.qcacheMu.Unlock()
		e.cacheHits.Add(1)
		return ans.regions, ans.pairs, ans.gen
	}
	e.qcacheMu.Unlock()
	e.cacheMisses.Add(1)
	var ans cachedAnswer
	switch kind {
	case QueryFrequentPairs:
		ans.pairs, ans.gen = e.store.TopKFrequentPairsGen(regions, w, k)
	default:
		ans.regions, ans.gen = e.store.TopKPopularRegionsGen(regions, w, k)
	}
	e.qcacheMu.Lock()
	e.qcache.Put(key, ans)
	e.qcacheMu.Unlock()
	return ans.regions, ans.pairs, ans.gen
}

// queryCacheKey canonically encodes one query shape. The region set is
// sorted and deduplicated first — the top-k queries treat regions as a
// set, so permuted or repeated region lists must share a cache slot —
// and the window bounds are encoded as raw float bits so distinct
// windows can never collide.
func queryCacheKey(kind QueryKind, regions []RegionID, w Window, k int) string {
	rs := make([]RegionID, len(regions))
	copy(rs, regions)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	buf := make([]byte, 0, 48+8*len(rs))
	buf = append(buf, kind...)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, math.Float64bits(w.Start), 16)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, math.Float64bits(w.End), 16)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(k), 10)
	for i, r := range rs {
		if i > 0 && r == rs[i-1] {
			continue
		}
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(r), 10)
	}
	return string(buf)
}

// ModelHash returns the content hash of the model this engine serves
// with — the identity the snapshot guard checks and the retrain plane
// reports over the admin API. It is stable for the engine's lifetime;
// a hot swap installs a new engine rather than mutating this one.
func (e *Engine) ModelHash() string {
	_, modelH := e.ann.hashes()
	return modelH
}

// SpaceHash returns the content hash of the venue geometry the engine
// serves with.
func (e *Engine) SpaceHash() string {
	spaceH, _ := e.ann.hashes()
	return spaceH
}

// StoreGeneration returns the live store's content generation — the
// value behind the ETag validator on the HTTP query surface. It moves
// strictly forward on every store mutation; equal generations imply
// byte-identical answers to every query over this venue.
func (e *Engine) StoreGeneration() uint64 {
	return e.store.Generation()
}

// RecordQueryRevalidation counts one successful HTTP revalidation (a
// conditional request answered 304 off the generation validator). The
// serving layer calls it so cache observability covers both tiers.
func (e *Engine) RecordQueryRevalidation() {
	e.cacheRevals.Add(1)
}

// queryDefaults applies the unified query semantics to the TopK*
// wrappers' arguments: an empty region set means every region of the
// venue, k == 0 means DefaultQueryK — matching what Query.normalized
// and the registry fan-out apply on the VenueRegistry path. A
// negative k stays negative and yields an empty list downstream (the
// error-returning registry path rejects it with ErrInvalidQuery; the
// errorless engine wrappers degrade to the empty answer instead).
func (e *Engine) queryDefaults(q []RegionID, k int) ([]RegionID, int) {
	if len(q) == 0 {
		q = e.Space().Regions()
	}
	if k == 0 {
		k = DefaultQueryK
	}
	return q, k
}

// TopKPopularRegions answers a TkPRQ over the live store. It is a
// compatibility wrapper over the unified query path — an empty q
// means every region of the venue, k == 0 means DefaultQueryK, a
// negative k yields an empty list; prefer VenueRegistry.Query in
// multi-venue deployments.
func (e *Engine) TopKPopularRegions(q []RegionID, w Window, k int) []RegionCount {
	q, k = e.queryDefaults(q, k)
	rcs, _, _ := e.queryCounts(QueryPopularRegions, q, w, k)
	return rcs
}

// TopKFrequentPairs answers a TkFRPQ over the live store. It is a
// compatibility wrapper over the unified query path, with the same
// empty-q and k defaults as TopKPopularRegions; prefer
// VenueRegistry.Query in multi-venue deployments.
func (e *Engine) TopKFrequentPairs(q []RegionID, w Window, k int) []PairCount {
	q, k = e.queryDefaults(q, k)
	_, pcs, _ := e.queryCounts(QueryFrequentPairs, q, w, k)
	return pcs
}

// Sequences returns a snapshot of the live store's ms-sequences.
func (e *Engine) Sequences() []MSSequence { return e.store.Snapshot() }

// snapshotFile captures the engine's live serving state as a snapshot
// file: identity header (venue ID plus space/model hashes), the η/ψ/
// retention configuration, the pipeline counters, the open stream
// fragments and the query-index state. Both sections are captured
// under the ingestion lock — fragment completion requires it, so no
// fragment can move from the stream buffers into the store between
// the two captures and end up in both (a double count after restore).
// A fragment completed just before the capture whose annotation is
// still in flight appears in neither section: the snapshot simply
// predates it, and a later snapshot picks it up.
func (e *Engine) snapshotFile(nowUnix int64) *snapshot.File {
	spaceH, modelH := e.ann.hashes()
	e.mu.Lock()
	fed := e.fed
	emitted := e.emitted.Load()
	streams := e.streams.SnapshotState()
	ixState := e.store.SnapshotState()
	e.mu.Unlock()
	return &snapshot.File{
		Header: snapshot.Header{
			Venue:       e.venue,
			SpaceHash:   spaceH,
			ModelHash:   modelH,
			CreatedUnix: nowUnix,
		},
		Engine: snapshot.EngineSection{
			Eta:                     e.eta,
			Psi:                     e.psi,
			Retention:               e.retention,
			FedRecords:              fed,
			EmittedSequences:        emitted,
			FeedBatches:             e.batches.Load(),
			QueryCacheHits:          e.cacheHits.Load(),
			QueryCacheMisses:        e.cacheMisses.Load(),
			QueryCacheRevalidations: e.cacheRevals.Load(),
		},
		Streams: snapshot.EncodeStreams(streams),
		Index:   snapshot.EncodeIndex(ixState),
	}
}

// WriteSnapshot serialises the engine's live serving state — open
// stream fragments, the live m-semantics store, pipeline counters —
// in the versioned c2mn-snapshot format. The snapshot records the
// venue's identity (space and model hashes), so RestoreSnapshot can
// refuse to load it into a venue it was not captured from. Use
// VenueRegistry.SnapshotVenue for atomic on-disk snapshots.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return snapshot.Write(w, e.snapshotFile(time.Now().Unix()))
}

// RestoreSnapshot installs a snapshot written by WriteSnapshot,
// resuming the captured sliding windows: the store answers queries
// warm and restored streams continue segmenting where they left off
// (same open fragments, same "#k" numbering). Failure modes are
// typed: ErrSnapshotVersion (future format), ErrSnapshotCorrupt
// (truncated or checksum-failed file), ErrSnapshotMismatch (snapshot
// of a different venue, space, model or η/ψ/retention configuration)
// and ErrSnapshotConflict (the engine already has live state). On any
// failure the engine is left unchanged.
func (e *Engine) RestoreSnapshot(r io.Reader) error {
	f, err := snapshot.Read(r)
	if err != nil {
		return wrapSnapshotError(err)
	}
	return e.restoreFile(f)
}

// wrapSnapshotError maps the snapshot package's sentinels onto the
// public typed errors; other errors (e.g. os.ErrNotExist from a
// missing file) pass through matchable.
func wrapSnapshotError(err error) error {
	switch {
	case errors.Is(err, snapshot.ErrVersion):
		return fmt.Errorf("%w: %w", ErrSnapshotVersion, err)
	case errors.Is(err, snapshot.ErrFormat), errors.Is(err, snapshot.ErrCorrupt):
		return fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	default:
		return err
	}
}

// restoreFile guards and installs a decoded snapshot; see
// RestoreSnapshot for the contract.
func (e *Engine) restoreFile(f *snapshot.File) error {
	if f.Venue != e.venue {
		return snapshotMismatch("snapshot is of venue %q, engine serves %q", f.Venue, e.venue)
	}
	spaceH, modelH := e.ann.hashes()
	if f.SpaceHash != spaceH {
		return snapshotMismatch("venue %q: space hash %.12s.., snapshot captured %.12s..", e.venue, spaceH, f.SpaceHash)
	}
	if f.ModelHash != modelH {
		return snapshotMismatch("venue %q: model hash %.12s.., snapshot captured %.12s.. (retrained model?)",
			e.venue, modelH, f.ModelHash)
	}
	if f.Engine.Eta != e.eta || f.Engine.Psi != e.psi || f.Engine.Retention != e.retention {
		return snapshotMismatch("venue %q: engine configured (η=%g, ψ=%g, retention=%g), snapshot captured (η=%g, ψ=%g, retention=%g)",
			e.venue, e.eta, e.psi, e.retention, f.Engine.Eta, f.Engine.Psi, f.Engine.Retention)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if seqs, _ := e.store.Len(); e.fed > 0 || e.emitted.Load() > 0 || e.streams.Len() > 0 || seqs > 0 {
		return fmt.Errorf("%w: venue %q already ingested traffic (%d records fed, %d sequences stored)",
			ErrSnapshotConflict, e.venue, e.fed, seqs)
	}
	// Validate the stream section on a scratch set before touching the
	// engine, so a bad snapshot cannot leave it half-restored.
	streams := seq.NewStreamSet(e.eta, e.psi)
	if err := streams.RestoreState(snapshot.DecodeStreams(f.Streams)); err != nil {
		return fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	// The store is empty (freshness above), so a failed index restore
	// leaves it empty — still unchanged.
	if err := e.store.RestoreState(snapshot.DecodeIndex(f.Index)); err != nil {
		return fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	e.streams = streams
	// Memoized answers predate the restore; the restored store's jumped
	// generation guarantees they could never match again, so dropping
	// them only reclaims the memory.
	e.qcacheMu.Lock()
	e.qcache.Purge()
	e.qcacheMu.Unlock()
	e.fed = f.Engine.FedRecords
	e.emitted.Store(f.Engine.EmittedSequences)
	e.batches.Store(f.Engine.FeedBatches)
	e.cacheHits.Store(f.Engine.QueryCacheHits)
	e.cacheMisses.Store(f.Engine.QueryCacheMisses)
	e.cacheRevals.Store(f.Engine.QueryCacheRevalidations)
	return nil
}

// EngineStats is a point-in-time view of the streaming pipeline.
type EngineStats struct {
	// FedRecords counts records accepted by Feed.
	FedRecords int64
	// PendingObjects counts objects with a buffered open fragment.
	PendingObjects int
	// PendingRecords counts records buffered in open fragments.
	PendingRecords int
	// EmittedSequences counts ms-sequences emitted so far.
	EmittedSequences int64
	// FeedBatches counts the pooled-state acquisitions the streaming
	// path made; EmittedSequences/FeedBatches is the mean coalesced
	// micro-batch size (1.0 when feeds never overlap).
	FeedBatches int64
	// StoredSequences and StoredSemantics size the live store (after
	// retention eviction).
	StoredSequences int
	StoredSemantics int
	// QueryCacheHits and QueryCacheMisses count generation-keyed result
	// cache lookups; hits/(hits+misses) is the cache hit ratio.
	QueryCacheHits   int64
	QueryCacheMisses int64
	// QueryCacheRevalidations counts conditional HTTP requests answered
	// 304 off the generation validator (the serving tier's cache hits).
	QueryCacheRevalidations int64
	// StoreNotifications counts generation-move signals delivered to the
	// change notifier (see WithChangeNotifier) — the push plane's event
	// source. Zero when no notifier is installed. Like the cache
	// counters it is process-local operational state: snapshots neither
	// persist nor restore it.
	StoreNotifications int64
}

// Stats reports the streaming pipeline's counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		EmittedSequences:        e.emitted.Load(),
		FeedBatches:             e.batches.Load(),
		QueryCacheHits:          e.cacheHits.Load(),
		QueryCacheMisses:        e.cacheMisses.Load(),
		QueryCacheRevalidations: e.cacheRevals.Load(),
		StoreNotifications:      e.notified.Load(),
	}
	e.mu.Lock()
	st.FedRecords = e.fed
	st.PendingObjects, st.PendingRecords = e.streams.Pending()
	e.mu.Unlock()
	st.StoredSequences, st.StoredSemantics = e.store.Len()
	return st
}
