package c2mn

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"c2mn/internal/core"
	"c2mn/internal/retrain"
	"c2mn/internal/seq"
)

// Re-exported retraining types: the internal/retrain control loop's
// vocabulary, surfaced so callers configure and observe the loop
// without importing internal packages. All are aliases — values flow
// freely between the public API and the internal package.
type (
	// RetrainConfig tunes one venue's drift detection, sampling and
	// shadow-gating; zero fields fall back to the package defaults.
	RetrainConfig = retrain.Config
	// RetrainDecision is the typed audit record of one retraining
	// cycle.
	RetrainDecision = retrain.Decision
	// RetrainState is a point-in-time view of a venue's loop.
	RetrainState = retrain.Status
	// RetrainTrigger names what started a cycle.
	RetrainTrigger = retrain.Trigger
	// RetrainOutcome is the audited result of a cycle.
	RetrainOutcome = retrain.Outcome
)

// Re-exported trigger and outcome values of the retraining audit
// vocabulary.
const (
	RetrainTriggerDrift  = retrain.TriggerDrift
	RetrainTriggerManual = retrain.TriggerManual

	RetrainSwapped  = retrain.OutcomeSwapped
	RetrainRejected = retrain.OutcomeRejected
	RetrainSkipped  = retrain.OutcomeSkipped
	RetrainFailed   = retrain.OutcomeFailed
)

// Typed sentinel errors of the retraining API.
var (
	// ErrRetrainDisabled is returned by the retraining entry points
	// when the registry was built without WithRetrainPolicy.
	ErrRetrainDisabled = errors.New("c2mn: retraining not enabled (use WithRetrainPolicy)")

	// ErrRetrainBusy is returned when a retraining cycle cannot start
	// because another one holds the training slot — either this
	// venue's loop (retrain.ErrBusy wraps into it) or another venue
	// occupying the registry's single fleet-wide slot.
	ErrRetrainBusy = retrain.ErrBusy

	// ErrRetrainSamples marks a cycle skipped for lack of labeled
	// samples (fewer than RetrainConfig.MinSamples, or a degenerate
	// train/holdout split).
	ErrRetrainSamples = retrain.ErrSamples

	// ErrRetrainConflict is returned when a shadow-winning candidate
	// cannot be installed because the venue's engine changed while it
	// trained (an operator reload, unload or migration landed first).
	// The incumbent that was scored is gone, so the comparison is
	// void; nothing is swapped.
	ErrRetrainConflict = errors.New("c2mn: venue engine changed during retraining")
)

// RetrainPolicy enables closed-loop retraining on a VenueRegistry:
// every venue gets a drift detector and bounded labeled-sample
// reservoirs fed by its streaming pipeline, and retraining cycles —
// drift-triggered when Auto is set, operator-triggered via Retrain —
// train a candidate model off the serving path, shadow-score it
// against the incumbent on held-out labeled data, and hot-swap it in
// only on a strict accuracy win. See internal/retrain for the gate's
// safety properties; in particular a venue fed no ground truth
// (RetrainFeedback / Retrain with truth data) can never swap.
type RetrainPolicy struct {
	// Config tunes drift detection, sampling and gating; zero fields
	// use the retrain package defaults.
	Config RetrainConfig
	// Auto starts a retraining cycle automatically when a venue's
	// drift detector fires (subject to the cycle cooldown and the
	// training slot). Manual Retrain calls work either way.
	Auto bool
	// Train configures candidate training (same knobs as Train); the
	// candidate always trains on the venue's own geometry.
	Train TrainOptions
}

// WithRetrainPolicy enables closed-loop retraining with the given
// policy on every venue the registry hosts.
func WithRetrainPolicy(p RetrainPolicy) RegistryOption {
	return func(vr *VenueRegistry) error {
		vr.retrain = &retrainManager{
			vr:     vr,
			policy: p,
			states: map[string]*retrain.State{},
			slot:   make(chan struct{}, 1),
		}
		return nil
	}
}

// ModelInfo identifies the model a venue currently serves with, as
// surfaced on the admin API.
type ModelInfo struct {
	Venue string `json:"venue"`
	// ModelHash and SpaceHash are the hex SHA-256 identities snapshot
	// compatibility is guarded by.
	ModelHash string `json:"model_hash"`
	SpaceHash string `json:"space_hash"`
	// ModelVersion is the model serialisation format version this
	// build writes.
	ModelVersion int `json:"model_version"`
	// SwapCount counts retraining hot swaps this venue's loop has
	// installed this process; RetrainedAtUnix is when the last one
	// landed (0 when the venue still serves its originally loaded
	// model, or retraining is disabled).
	SwapCount       int64 `json:"swap_count"`
	RetrainedAtUnix int64 `json:"retrained_at_unix,omitempty"`
}

// VenueModel reports the identity of the model venueID serves with.
func (vr *VenueRegistry) VenueModel(venueID string) (ModelInfo, error) {
	e, err := vr.Engine(venueID)
	if err != nil {
		return ModelInfo{}, err
	}
	info := ModelInfo{
		Venue:        venueID,
		ModelHash:    e.ModelHash(),
		SpaceHash:    e.SpaceHash(),
		ModelVersion: core.ModelFormatVersion,
	}
	if vr.retrain != nil {
		info.SwapCount, info.RetrainedAtUnix = vr.retrain.state(venueID).Swaps()
	}
	return info, nil
}

// Retrain runs one retraining cycle for venueID synchronously: any
// truth sequences are added to the venue's ground-truth reservoir
// first (they persist for later cycles too), then a candidate is
// trained, shadow-scored and — only on a strict win — hot-swapped in.
// The returned decision describes the cycle even when err != nil;
// errors.Is-matchable failures: ErrRetrainDisabled, ErrUnknownVenue,
// ErrRetrainBusy (a cycle already in flight), ErrRetrainConflict (the
// engine changed mid-cycle), plus whatever gate the serving tier
// installed (SetRetrainGate).
func (vr *VenueRegistry) Retrain(venueID string, truth []LabeledSequence) (RetrainDecision, error) {
	if vr.retrain == nil {
		return RetrainDecision{}, ErrRetrainDisabled
	}
	if _, err := vr.Engine(venueID); err != nil {
		return RetrainDecision{}, err
	}
	if len(truth) > 0 {
		vr.retrain.state(venueID).AddTruth(truth)
	}
	return vr.retrain.run(venueID, retrain.TriggerManual)
}

// RetrainFeedback adds operator-labeled ground-truth sequences to
// venueID's truth reservoir without starting a cycle. Feedback is what
// opens the shadow gate: holdout scoring uses recorded labels, so
// without ground truth the incumbent is unbeatable on its own output.
func (vr *VenueRegistry) RetrainFeedback(venueID string, truth []LabeledSequence) (int, error) {
	if vr.retrain == nil {
		return 0, ErrRetrainDisabled
	}
	if _, err := vr.Engine(venueID); err != nil {
		return 0, err
	}
	return vr.retrain.state(venueID).AddTruth(truth), nil
}

// RetrainStatus reports venueID's retraining loop state: drift index,
// reservoir sizes, cycle counters and the recent audit decisions.
func (vr *VenueRegistry) RetrainStatus(venueID string) (RetrainState, error) {
	if vr.retrain == nil {
		return RetrainState{}, ErrRetrainDisabled
	}
	if _, err := vr.Engine(venueID); err != nil {
		return RetrainState{}, err
	}
	return vr.retrain.state(venueID).Status(), nil
}

// SetRetrainGate installs a check consulted before any retraining
// cycle starts (manual or drift-triggered): a non-nil return vetoes
// the cycle and is returned to the caller. The serving tier uses it to
// fence retraining off from drains and venue migrations. A nil fn
// clears the gate. No-op when retraining is disabled.
func (vr *VenueRegistry) SetRetrainGate(fn func(venueID string) error) {
	if vr.retrain == nil {
		return
	}
	vr.retrain.mu.Lock()
	vr.retrain.gate = fn
	vr.retrain.mu.Unlock()
}

// SetRetrainObserver installs a callback invoked with every completed
// cycle's audit decision (swapped, rejected, skipped or failed — not
// for cycles refused with ErrRetrainBusy, which record nothing). It
// runs on the cycle's goroutine after the decision is recorded; the
// serving tier uses it to invalidate watch subscribers and snapshot
// staleness tracking after a swap. A nil fn clears the observer.
// No-op when retraining is disabled.
func (vr *VenueRegistry) SetRetrainObserver(fn func(RetrainDecision)) {
	if vr.retrain == nil {
		return
	}
	vr.retrain.mu.Lock()
	vr.retrain.observer = fn
	vr.retrain.mu.Unlock()
}

// retrainManager owns the registry's retraining plane: per-venue loop
// states, the serving-tier gate and observer hooks, and the single
// fleet-wide training slot (training is CPU-bound; one venue at a time
// keeps it off the serving path's budget).
type retrainManager struct {
	vr     *VenueRegistry
	policy RetrainPolicy

	mu       sync.Mutex
	states   map[string]*retrain.State
	gate     func(venueID string) error
	observer func(RetrainDecision)

	slot chan struct{} // capacity 1: the fleet-wide training slot
}

// state returns (creating on first use) the venue's loop state.
func (m *retrainManager) state(venue string) *retrain.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[venue]
	if !ok {
		st = retrain.NewState(m.policy.Config)
		m.states[venue] = st
	}
	return st
}

// reset drops a venue's loop state. Called when an operator reloads or
// unloads the venue: the drift reference and self-labeled samples
// belong to the replaced model.
func (m *retrainManager) reset(venue string) {
	m.mu.Lock()
	delete(m.states, venue)
	m.mu.Unlock()
}

// sink returns the labeled-sequence tap installed on venue's engines:
// every streamed inference feeds the drift detector and the stream
// reservoir, and — under an Auto policy — a drift trigger starts a
// detached cycle.
func (m *retrainManager) sink(venue string) func(LabeledSequence) {
	return func(ls LabeledSequence) {
		_, trigger := m.state(venue).Observe(ls.Labels, ls)
		if trigger && m.policy.Auto {
			// Detached: the Feed caller must not wait out a training
			// run. Busy/gate refusals are fine — the detector stays
			// drifted and a later sequence re-triggers after cooldown.
			go m.run(venue, retrain.TriggerDrift)
		}
	}
}

// annotateFunc adapts an engine to the retrain package's inference
// callback. Scoring runs through the engine's own entry point, so both
// sides of the shadow comparison use the venue's exact serving
// configuration (windowing, inference options, shared budget).
func annotateFunc(e *Engine) retrain.AnnotateFunc {
	return func(p *seq.PSequence) (seq.Labels, error) {
		labels, _, err := e.AnnotateCtx(context.Background(), p)
		return labels, err
	}
}

// run executes one cycle for venue under the fleet-wide slot; see
// VenueRegistry.Retrain for the observable contract.
func (m *retrainManager) run(venue string, trigger retrain.Trigger) (RetrainDecision, error) {
	m.mu.Lock()
	gate := m.gate
	m.mu.Unlock()
	if gate != nil {
		if err := gate(venue); err != nil {
			return RetrainDecision{}, err
		}
	}
	incumbent, err := m.vr.Engine(venue)
	if err != nil {
		return RetrainDecision{}, err
	}
	select {
	case m.slot <- struct{}{}:
	default:
		return RetrainDecision{}, fmt.Errorf("%w: another venue holds the training slot", ErrRetrainBusy)
	}
	defer func() { <-m.slot }()

	train := func(trainSet []seq.LabeledSequence) (retrain.Candidate, error) {
		a, err := Train(incumbent.Space(), trainSet, m.policy.Train)
		if err != nil {
			return retrain.Candidate{}, err
		}
		m.vr.mu.RLock()
		opts := append([]Option(nil), m.vr.venueOpts[venue]...)
		m.vr.mu.RUnlock()
		next, err := m.vr.buildEngine(venue, a, opts)
		if err != nil {
			return retrain.Candidate{}, err
		}
		return retrain.Candidate{
			Annotate: annotateFunc(next),
			// Install is fenced: the swap lands only if the venue still
			// serves the incumbent that was shadow-scored.
			Install: func() error { return m.vr.swapEngine(venue, incumbent, next) },
			Hash:    next.ModelHash(),
		}, nil
	}

	d, err := m.state(venue).Run(venue, trigger, annotateFunc(incumbent), train)
	if !errors.Is(err, retrain.ErrBusy) {
		m.mu.Lock()
		obs := m.observer
		m.mu.Unlock()
		if obs != nil {
			obs(d)
		}
	}
	return d, err
}

// swapEngine installs a retrained engine in place of the exact
// incumbent it was shadow-scored against. The fence (cur == old)
// refuses the swap when anything replaced the engine mid-cycle — an
// operator reload, an unload, a migration — because the scored
// comparison no longer describes what is serving. On success the
// replacement's store generation is spliced past the incumbent's, so
// every downstream validator (ETags, router partials, watch resume
// labels) sees the swap as new content.
func (vr *VenueRegistry) swapEngine(venueID string, old, next *Engine) error {
	vr.mu.Lock()
	defer vr.mu.Unlock()
	if cur, ok := vr.venues[venueID]; !ok || cur != old {
		return fmt.Errorf("%w: venue %q", ErrRetrainConflict, venueID)
	}
	vr.spliceGeneration(old, next)
	vr.venues[venueID] = next
	return nil
}
