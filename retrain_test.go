package c2mn

import (
	"errors"
	"testing"

	"c2mn/internal/query"
	"c2mn/internal/sim"
)

// retrainWorld builds a venue plus labeled workload and two models: a
// deliberately weak incumbent (one exact step over two sequences) and
// the full labeled set to retrain from.
func retrainWorld(t testing.TB) (*Space, []LabeledSequence, *Annotator) {
	t.Helper()
	space, err := GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := GenerateMobility(space, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Train(space, ds.Sequences[:2], TrainOptions{
		V: 6, Exact: true, MaxIter: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return space, ds.Sequences, weak
}

func retrainRegistry(t testing.TB, train TrainOptions) *VenueRegistry {
	t.Helper()
	vr, err := NewVenueRegistry(WithRetrainPolicy(RetrainPolicy{
		Config: RetrainConfig{MinSamples: 8, HoldoutFrac: 0.5, Seed: 3},
		Train:  train,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return vr
}

func TestRetrainDisabled(t *testing.T) {
	vr, err := NewVenueRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vr.Retrain("v", nil); !errors.Is(err, ErrRetrainDisabled) {
		t.Fatalf("err %v, want ErrRetrainDisabled", err)
	}
	if _, err := vr.RetrainStatus("v"); !errors.Is(err, ErrRetrainDisabled) {
		t.Fatalf("status err %v, want ErrRetrainDisabled", err)
	}
}

func TestRetrainUnknownVenue(t *testing.T) {
	vr := retrainRegistry(t, TrainOptions{Exact: true})
	if _, err := vr.Retrain("missing", nil); !errors.Is(err, ErrUnknownVenue) {
		t.Fatalf("err %v, want ErrUnknownVenue", err)
	}
}

// TestRetrainSwapsOnWin drives the whole public loop: a weak incumbent
// venue, operator ground truth through RetrainFeedback, a manual
// Retrain — and asserts the genuinely better candidate goes live with
// model identity, audit trail and a spliced store generation.
func TestRetrainSwapsOnWin(t *testing.T) {
	_, data, weak := retrainWorld(t)
	vr := retrainRegistry(t, TrainOptions{V: 6, Exact: true, TuneClustering: true, Seed: 2})
	old, err := vr.Register("v", weak)
	if err != nil {
		t.Fatal(err)
	}
	oldHash := old.ModelHash()

	if n, err := vr.RetrainFeedback("v", data); err != nil || n != len(data) {
		t.Fatalf("feedback: %d, %v", n, err)
	}
	d, err := vr.Retrain("v", nil)
	if err != nil {
		t.Fatalf("retrain: %v (decision %+v)", err, d)
	}
	if d.Outcome != RetrainSwapped {
		t.Fatalf("outcome %q (inc CA %.3f vs cand CA %.3f), want swapped",
			d.Outcome, d.IncumbentCA, d.CandidateCA)
	}
	if d.CandidateCA <= d.IncumbentCA {
		t.Fatalf("swap without a strict win: %.3f vs %.3f", d.CandidateCA, d.IncumbentCA)
	}

	e, err := vr.Engine("v")
	if err != nil {
		t.Fatal(err)
	}
	if e == old || e.ModelHash() == oldHash {
		t.Fatal("venue still serves the incumbent after a swap")
	}
	if e.ModelHash() != d.ModelHash {
		t.Fatalf("serving model %q, audit says %q", e.ModelHash(), d.ModelHash)
	}
	// The replacement's generation line must start past everything the
	// incumbent could have published, so stale ETags never revalidate.
	if g := e.StoreGeneration(); g < query.GenerationJump {
		t.Fatalf("swapped store generation %d not spliced past the incumbent", g)
	}
	info, err := vr.VenueModel("v")
	if err != nil {
		t.Fatal(err)
	}
	if info.SwapCount != 1 || info.RetrainedAtUnix == 0 || info.ModelHash != e.ModelHash() {
		t.Fatalf("model info after swap: %+v", info)
	}
	st, err := vr.RetrainStatus("v")
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts[RetrainSwapped] != 1 || len(st.Last) != 1 {
		t.Fatalf("audit status after swap: %+v", st)
	}
}

// TestRetrainRejectsCrippledCandidate pins the gate shut: a candidate
// trained with a near-zero prior variance (legal but crippling — the
// weights are shrunk to nothing) must lose the shadow comparison and
// never be installed.
func TestRetrainRejectsCrippledCandidate(t *testing.T) {
	space, data, _ := retrainWorld(t)
	good, err := Train(space, data[:7], TrainOptions{V: 6, Exact: true, TuneClustering: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vr := retrainRegistry(t, TrainOptions{V: 6, Exact: true, Sigma2: 1e-9, Seed: 2})
	old, err := vr.Register("v", good)
	if err != nil {
		t.Fatal(err)
	}
	d, err := vr.Retrain("v", data)
	if err != nil {
		t.Fatalf("retrain: %v (decision %+v)", err, d)
	}
	if d.Outcome != RetrainRejected {
		t.Fatalf("outcome %q (inc CA %.3f vs cand CA %.3f), want rejected",
			d.Outcome, d.IncumbentCA, d.CandidateCA)
	}
	if e, _ := vr.Engine("v"); e != old {
		t.Fatal("crippled candidate was installed")
	}
	if info, _ := vr.VenueModel("v"); info.SwapCount != 0 {
		t.Fatalf("swap count %d after a rejection", info.SwapCount)
	}
}

// TestRetrainGateVeto: a serving-tier gate (drain, migration) refuses
// the cycle before anything trains.
func TestRetrainGateVeto(t *testing.T) {
	_, data, weak := retrainWorld(t)
	vr := retrainRegistry(t, TrainOptions{Exact: true})
	if _, err := vr.Register("v", weak); err != nil {
		t.Fatal(err)
	}
	veto := errors.New("venue draining")
	vr.SetRetrainGate(func(venueID string) error {
		if venueID == "v" {
			return veto
		}
		return nil
	})
	if _, err := vr.Retrain("v", data); !errors.Is(err, veto) {
		t.Fatalf("err %v, want the gate's veto", err)
	}
	vr.SetRetrainGate(nil)
	if _, err := vr.Retrain("v", nil); errors.Is(err, veto) {
		t.Fatal("cleared gate still vetoing")
	}
}

// TestRetrainConflictFence: a swap attempt against an engine that is
// no longer the venue's serving engine must refuse with
// ErrRetrainConflict and leave the current engine in place.
func TestRetrainConflictFence(t *testing.T) {
	_, _, weak := retrainWorld(t)
	vr := retrainRegistry(t, TrainOptions{Exact: true})
	old, err := vr.Register("v", weak)
	if err != nil {
		t.Fatal(err)
	}
	// An operator reload lands mid-cycle.
	cur, err := vr.Register("v", weak)
	if err != nil {
		t.Fatal(err)
	}
	next, err := vr.buildEngine("v", weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vr.swapEngine("v", old, next); !errors.Is(err, ErrRetrainConflict) {
		t.Fatalf("err %v, want ErrRetrainConflict", err)
	}
	if e, _ := vr.Engine("v"); e != cur {
		t.Fatal("fenced swap still replaced the engine")
	}
}

// TestRetrainObserver sees every completed decision.
func TestRetrainObserver(t *testing.T) {
	_, _, weak := retrainWorld(t)
	vr := retrainRegistry(t, TrainOptions{Exact: true})
	if _, err := vr.Register("v", weak); err != nil {
		t.Fatal(err)
	}
	var seen []RetrainDecision
	vr.SetRetrainObserver(func(d RetrainDecision) { seen = append(seen, d) })
	// No samples: the cycle skips, and the skip is still observed.
	if _, err := vr.Retrain("v", nil); err == nil {
		t.Fatal("expected a skipped-cycle error with no samples")
	}
	if len(seen) != 1 || seen[0].Outcome != RetrainSkipped {
		t.Fatalf("observer saw %+v, want one skipped decision", seen)
	}
}
