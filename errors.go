package c2mn

import (
	"errors"
	"fmt"
)

// Typed sentinel errors of the annotation API. Callers match them with
// errors.Is; all errors returned by the context-accepting entry points
// and the Engine wrap one of these (or a sequence validation error).
var (
	// ErrCanceled is returned when a context is canceled or its
	// deadline passes before annotation completes.
	ErrCanceled = errors.New("c2mn: annotation canceled")

	// ErrEmptySequence is returned when a sequence with no records is
	// submitted for annotation; no semantics can be asserted for it.
	ErrEmptySequence = errors.New("c2mn: empty positioning sequence")

	// ErrNoModel is returned when an Engine or annotation call is made
	// without a trained model behind it.
	ErrNoModel = errors.New("c2mn: no trained model")

	// ErrUnknownVenue is returned when a VenueRegistry call names a
	// venue that is not loaded.
	ErrUnknownVenue = errors.New("c2mn: unknown venue")

	// ErrTooManyVenues is returned when loading a new venue would
	// exceed the registry's WithMaxVenues limit.
	ErrTooManyVenues = errors.New("c2mn: too many venues")

	// ErrModelVersion is returned by Load when the model file was
	// written by a newer format version than this build understands.
	ErrModelVersion = errors.New("c2mn: unsupported model format version")

	// ErrBacklog is returned by the streaming ingestion path when a
	// completed fragment's wait for a shared inference slot (see
	// WithVenueBudget) exceeds the WithFeedQueueTimeout bound — the
	// venue's annotation backlog has outgrown the fleet's capacity and
	// the caller should back off and retry.
	ErrBacklog = errors.New("c2mn: annotation backlog")

	// ErrInvalidQuery is returned by VenueRegistry.Query when the Query
	// is malformed: unknown kind or scope, a venue list that
	// contradicts the scope, a negative K, or a NaN window bound.
	ErrInvalidQuery = errors.New("c2mn: invalid query")
)

// unknownVenue wraps ErrUnknownVenue with the offending venue ID so
// errors.Is(err, ErrUnknownVenue) holds and the message names the ID.
func unknownVenue(id string) error {
	return fmt.Errorf("%w: %q", ErrUnknownVenue, id)
}

// invalidQuery wraps ErrInvalidQuery with the specific defect.
func invalidQuery(detail string) error {
	return fmt.Errorf("%w: %s", ErrInvalidQuery, detail)
}

// canceled wraps a context cancellation cause in ErrCanceled so that
// errors.Is(err, ErrCanceled) holds while the original cause (e.g.
// context.DeadlineExceeded) stays matchable too.
func canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
