package c2mn

import (
	"errors"
	"fmt"
)

// Typed sentinel errors of the annotation API. Callers match them with
// errors.Is; all errors returned by the context-accepting entry points
// and the Engine wrap one of these (or a sequence validation error).
var (
	// ErrCanceled is returned when a context is canceled or its
	// deadline passes before annotation completes.
	ErrCanceled = errors.New("c2mn: annotation canceled")

	// ErrEmptySequence is returned when a sequence with no records is
	// submitted for annotation; no semantics can be asserted for it.
	ErrEmptySequence = errors.New("c2mn: empty positioning sequence")

	// ErrNoModel is returned when an Engine or annotation call is made
	// without a trained model behind it.
	ErrNoModel = errors.New("c2mn: no trained model")
)

// canceled wraps a context cancellation cause in ErrCanceled so that
// errors.Is(err, ErrCanceled) holds while the original cause (e.g.
// context.DeadlineExceeded) stays matchable too.
func canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
