package c2mn

import (
	"errors"
	"fmt"
)

// Typed sentinel errors of the annotation API. Callers match them with
// errors.Is; all errors returned by the context-accepting entry points
// and the Engine wrap one of these (or a sequence validation error).
var (
	// ErrCanceled is returned when a context is canceled or its
	// deadline passes before annotation completes.
	ErrCanceled = errors.New("c2mn: annotation canceled")

	// ErrEmptySequence is returned when a sequence with no records is
	// submitted for annotation; no semantics can be asserted for it.
	ErrEmptySequence = errors.New("c2mn: empty positioning sequence")

	// ErrNoModel is returned when an Engine or annotation call is made
	// without a trained model behind it.
	ErrNoModel = errors.New("c2mn: no trained model")

	// ErrUnknownVenue is returned when a VenueRegistry call names a
	// venue that is not loaded.
	ErrUnknownVenue = errors.New("c2mn: unknown venue")

	// ErrTooManyVenues is returned when loading a new venue would
	// exceed the registry's WithMaxVenues limit.
	ErrTooManyVenues = errors.New("c2mn: too many venues")

	// ErrModelVersion is returned by Load when the model file was
	// written by a newer format version than this build understands.
	ErrModelVersion = errors.New("c2mn: unsupported model format version")

	// ErrBacklog is returned by the streaming ingestion path when a
	// completed fragment's wait for a shared inference slot (see
	// WithVenueBudget) exceeds the WithFeedQueueTimeout bound — the
	// venue's annotation backlog has outgrown the fleet's capacity and
	// the caller should back off and retry.
	ErrBacklog = errors.New("c2mn: annotation backlog")

	// ErrInvalidQuery is returned by VenueRegistry.Query when the Query
	// is malformed: unknown kind or scope, a venue list that
	// contradicts the scope, a negative K, or a NaN window bound.
	ErrInvalidQuery = errors.New("c2mn: invalid query")

	// ErrSnapshotVersion is returned when a snapshot file was written
	// by a newer c2mn-snapshot format version than this build
	// understands. (A file that is not a c2mn snapshot at all is
	// ErrSnapshotCorrupt.)
	ErrSnapshotVersion = errors.New("c2mn: unsupported snapshot format version")

	// ErrSnapshotMismatch is returned when a snapshot does not belong
	// to the venue it is being restored into: the venue ID, the space
	// hash, the model hash, or the engine's η/ψ/retention configuration
	// differs from what the snapshot was captured under. Restoring
	// state annotated by a different model (e.g. after a retrain) would
	// silently mix semantics of two models, so it is refused.
	ErrSnapshotMismatch = errors.New("c2mn: snapshot does not match the loaded venue")

	// ErrSnapshotCorrupt is returned for truncated or corrupted
	// snapshot files (torn writes, checksum mismatches). The venue's
	// live state is left untouched.
	ErrSnapshotCorrupt = errors.New("c2mn: corrupt snapshot")

	// ErrSnapshotConflict is returned when a snapshot is restored into
	// a venue that already has live serving state (fed records, open
	// streams or stored sequences). Restores only land on a freshly
	// loaded venue — a warm restart must not silently discard traffic
	// the venue has already absorbed.
	ErrSnapshotConflict = errors.New("c2mn: venue already has live state")

	// ErrNoBackend is returned by the routing tier when a venue cannot
	// be placed: no backend is registered, none is ready, or the
	// venue's pin names a backend that has been removed from the
	// table.
	ErrNoBackend = errors.New("c2mn: no ready backend")

	// ErrMigrationConflict is returned when a venue migration is
	// requested while another migration of the same venue is still in
	// flight. Exactly one coordinator may drain, snapshot and move a
	// venue at a time; concurrent attempts would race the drain state
	// and the snapshot transfer.
	ErrMigrationConflict = errors.New("c2mn: venue migration already in progress")
)

// unknownVenue wraps ErrUnknownVenue with the offending venue ID so
// errors.Is(err, ErrUnknownVenue) holds and the message names the ID.
func unknownVenue(id string) error {
	return fmt.Errorf("%w: %q", ErrUnknownVenue, id)
}

// snapshotMismatch wraps ErrSnapshotMismatch with the differing field.
func snapshotMismatch(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotMismatch, fmt.Sprintf(format, args...))
}

// invalidQuery wraps ErrInvalidQuery with the specific defect.
func invalidQuery(detail string) error {
	return fmt.Errorf("%w: %s", ErrInvalidQuery, detail)
}

// canceled wraps a context cancellation cause in ErrCanceled so that
// errors.Is(err, ErrCanceled) holds while the original cause (e.g.
// context.DeadlineExceeded) stays matchable too.
func canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
