package c2mn

// End-to-end integration test: raw CSV positioning logs → preprocessing
// → training → annotation (plain and windowed) → m-semantics → top-k
// queries, exercising the full public pipeline a downstream user would
// run.

import (
	"bytes"
	"fmt"
	"testing"

	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

func TestEndToEndPipeline(t *testing.T) {
	// 1. Simulate a venue and raw logs, exported as CSV (as a
	// positioning system would produce them).
	space, err := GenerateBuilding(sim.SmallBuilding(), 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.DefaultMobility(12, 1500)
	spec.StayMax = 300
	ds, err := GenerateMobility(space, spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string][]Record{}
	truthLabels := map[string]Labels{}
	for i := range ds.Sequences {
		ls := &ds.Sequences[i]
		streams[ls.P.ObjectID] = ls.P.Records
		truthLabels[ls.P.ObjectID] = ls.Labels
	}
	var csvBuf bytes.Buffer
	if err := seq.WriteRecordsCSV(&csvBuf, streams); err != nil {
		t.Fatal(err)
	}

	// 2. Ingest the CSV back and preprocess into p-sequences.
	back, err := seq.ReadRecordsCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(streams) {
		t.Fatalf("CSV round trip lost objects: %d vs %d", len(back), len(streams))
	}
	var pseqs []PSequence
	for id, records := range back {
		pseqs = append(pseqs, Preprocess(id, records, 120, 60)...)
	}
	if len(pseqs) == 0 {
		t.Fatal("preprocessing dropped everything")
	}

	// 3. Train on the labeled simulator output.
	train := ds.Sequences[:8]
	test := ds.Sequences[8:]
	ann, err := Train(space, train, TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 4. Annotate held-out sequences, both whole and windowed, and
	// collect m-semantics.
	var pred, truth []MSSequence
	for i := range test {
		labels, ms, err := ann.Annotate(&test[i].P)
		if err != nil {
			t.Fatal(err)
		}
		if err := (&LabeledSequence{P: test[i].P, Labels: labels}).Validate(); err != nil {
			t.Fatalf("predicted labels invalid: %v", err)
		}
		wLabels, _, err := ann.AnnotateWindowed(&test[i].P, 60, 15)
		if err != nil {
			t.Fatal(err)
		}
		if len(wLabels.Regions) != test[i].P.Len() {
			t.Fatalf("windowed labels misaligned")
		}
		pred = append(pred, ms)
		truth = append(truth, Merge(&test[i].P, test[i].Labels))
	}

	// 5. Queries over annotated vs truth m-semantics.
	w := Window{Start: 0, End: spec.Duration}
	q := space.Regions()
	gotTop := TopKPopularRegions(pred, q, w, 5)
	wantTop := TopKPopularRegions(truth, q, w, 5)
	if len(gotTop) == 0 || len(wantTop) == 0 {
		t.Fatal("queries returned nothing")
	}
	// At least some of the true top regions appear in the predicted
	// top (loose: the workload is tiny).
	wantSet := map[RegionID]bool{}
	for _, rc := range wantTop {
		wantSet[rc.Region] = true
	}
	hits := 0
	for _, rc := range gotTop {
		if wantSet[rc.Region] {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("no overlap between predicted and true top regions: %v vs %v", gotTop, wantTop)
	}

	// 6. Persistence round trip keeps behaviour identical.
	var modelBuf, spaceBuf bytes.Buffer
	if err := ann.Save(&modelBuf); err != nil {
		t.Fatal(err)
	}
	if err := space.WriteJSON(&spaceBuf); err != nil {
		t.Fatal(err)
	}
	space2, err := ReadSpace(&spaceBuf)
	if err != nil {
		t.Fatal(err)
	}
	ann2, err := Load(space2, &modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	l1, _, _ := ann.Annotate(&test[0].P)
	l2, _, _ := ann2.Annotate(&test[0].P)
	for i := range l1.Regions {
		if l1.Regions[i] != l2.Regions[i] || l1.Events[i] != l2.Events[i] {
			t.Fatalf("reloaded pipeline disagrees at record %d", i)
		}
	}
}

func TestEndToEndDatasetJSON(t *testing.T) {
	// Dataset JSON round trip through the facade types.
	space, err := GenerateBuilding(sim.SmallBuilding(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateMobility(space, sim.DefaultMobility(3, 600), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumRecords() != ds.NumRecords() {
		t.Errorf("record count changed: %d vs %d", ds2.NumRecords(), ds.NumRecords())
	}
	if fmt.Sprintf("%v", ds2.Stats()) != fmt.Sprintf("%v", ds.Stats()) {
		t.Errorf("stats changed: %+v vs %+v", ds2.Stats(), ds.Stats())
	}
}
