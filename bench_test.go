package c2mn

// One benchmark per table and figure of the paper's evaluation
// (§V; see DESIGN.md §5 for the experiment index). Each benchmark
// regenerates its table/figure through the internal/experiments driver
// and prints the same rows/series the paper reports, plus key cells as
// benchmark metrics.
//
// The workload scale defaults to "small" (the paper's venue profiles
// at container-sized workloads); set C2MN_BENCH_SCALE=tiny for smoke
// runs or =paper for the full-parameter configuration.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"c2mn/internal/experiments"
	"c2mn/internal/notify"
	"c2mn/internal/query"
	"c2mn/internal/snapshot"
)

func benchScale(b *testing.B) experiments.Scale {
	name := os.Getenv("C2MN_BENCH_SCALE")
	if name == "" {
		name = "small"
	}
	sc, ok := experiments.ScaleByName(name)
	if !ok {
		b.Fatalf("unknown C2MN_BENCH_SCALE %q", name)
	}
	return sc
}

// Several figures share one combined driver (e.g. Figs. 14–16 all come
// from TSweep). The first benchmark of a group pays the full cost; the
// others reuse the cached tables, so their ns/op reflects only the
// slicing. The printed series are identical either way.
var (
	sweepMu    sync.Mutex
	sweepCache = map[string][]*experiments.Table{}
)

func cachedSweep(b *testing.B, key string, run func() ([]*experiments.Table, error)) []*experiments.Table {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if t, ok := sweepCache[key]; ok {
		return t
	}
	t, err := run()
	if err != nil {
		b.Fatal(err)
	}
	sweepCache[key] = t
	return t
}

// printOnce renders the tables on the first iteration only.
func printOnce(i int, tables ...*experiments.Table) {
	if i != 0 {
		return
	}
	for _, t := range tables {
		if t != nil {
			t.Fprint(os.Stdout)
		}
	}
}

func BenchmarkTable3DatasetStatistics(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cell("mall", "records"), "records")
	}
}

func BenchmarkTable4LabelingAccuracy(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cell("C2MN", "CA"), "C2MN-CA")
		b.ReportMetric(t.Cell("C2MN", "PA"), "C2MN-PA")
		b.ReportMetric(t.Cell("CMN", "CA"), "CMN-CA")
		b.ReportMetric(t.Cell("SMoT", "CA"), "SMoT-CA")
	}
}

func BenchmarkTable5SyntheticDatasets(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table5(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cell("T5u7", "records"), "T5u7-records")
	}
}

func BenchmarkFig5CombinedAccuracyVsTrainingFraction(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/frac", func() ([]*experiments.Table, error) {
			ca, pa, err := experiments.TrainingFractionSweep(sc)
			return []*experiments.Table{ca, pa}, err
		})
		ca, pa := ts[0], ts[1]
		printOnce(i, ca, pa)
		b.ReportMetric(ca.Cell("C2MN", "40%"), "C2MN-CA-40")
		b.ReportMetric(ca.Cell("C2MN", "80%"), "C2MN-CA-80")
	}
}

func BenchmarkFig6PerfectAccuracyVsTrainingFraction(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/frac", func() ([]*experiments.Table, error) {
			ca, pa, err := experiments.TrainingFractionSweep(sc)
			return []*experiments.Table{ca, pa}, err
		})
		pa := ts[1]
		printOnce(i, pa)
		b.ReportMetric(pa.Cell("C2MN", "70%"), "C2MN-PA-70")
	}
}

func BenchmarkFig7RegionAccuracyVsM(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/msweep", func() ([]*experiments.Table, error) {
			ra, ea, err := experiments.MSweep(sc)
			return []*experiments.Table{ra, ea}, err
		})
		ra, ea := ts[0], ts[1]
		printOnce(i, ra, ea)
		b.ReportMetric(ra.Cell("C2MN", ra.ColNames[len(ra.ColNames)-1]), "C2MN-RA-maxM")
	}
}

func BenchmarkFig8EventAccuracyVsM(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/msweep", func() ([]*experiments.Table, error) {
			ra, ea, err := experiments.MSweep(sc)
			return []*experiments.Table{ra, ea}, err
		})
		ea := ts[1]
		printOnce(i, ea)
		b.ReportMetric(ea.Cell("C2MN", ea.ColNames[0]), "C2MN-EA-minM")
	}
}

func BenchmarkFig9TrainingTimeVsMaxIter(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.MaxIterSweep(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		last := t.ColNames[len(t.ColNames)-1]
		b.ReportMetric(t.Cell("C2MN", last), "C2MN-secs")
		b.ReportMetric(t.Cell("CMN", last), "CMN-secs")
	}
}

func BenchmarkFig10TrainingTimeVsTrainingFraction(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.TrainingTimeVsFraction(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cell("C2MN", "80%"), "C2MN-secs-80")
	}
}

func BenchmarkFig11FirstConfiguredVariable(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.FirstConfiguredVariable(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		last := t.ColNames[len(t.ColNames)-1]
		b.ReportMetric(t.Cell("C2MN", last), "E-first-secs")
		b.ReportMetric(t.Cell("C2MN@R", last), "R-first-secs")
	}
}

func BenchmarkFig12TkPRQPrecision(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/query", func() ([]*experiments.Table, error) {
			a, bq, err := experiments.QueryPrecision(sc)
			return []*experiments.Table{a, bq}, err
		})
		tkprq, tkfrpq := ts[0], ts[1]
		printOnce(i, tkprq, tkfrpq)
		b.ReportMetric(tkprq.Cell("C2MN", tkprq.ColNames[len(tkprq.ColNames)-1]), "C2MN-prec-maxQT")
	}
}

func BenchmarkFig13TkFRPQPrecision(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/query", func() ([]*experiments.Table, error) {
			a, bq, err := experiments.QueryPrecision(sc)
			return []*experiments.Table{a, bq}, err
		})
		tkfrpq := ts[1]
		printOnce(i, tkfrpq)
		b.ReportMetric(tkfrpq.Cell("C2MN", tkfrpq.ColNames[0]), "C2MN-prec-minQT")
	}
}

func BenchmarkFig14PerfectAccuracyVsT(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/tsweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.TSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		pa := ts[0]
		printOnce(i, ts...)
		b.ReportMetric(pa.Cell("C2MN", "T=5s"), "C2MN-PA-T5")
		b.ReportMetric(pa.Cell("C2MN", "T=15s"), "C2MN-PA-T15")
	}
}

func BenchmarkFig15TkPRQPrecisionVsT(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/tsweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.TSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		tkprq := ts[1]
		printOnce(i, tkprq)
		b.ReportMetric(tkprq.Cell("C2MN", "T=15s"), "C2MN-prec-T15")
	}
}

func BenchmarkFig16TkFRPQPrecisionVsT(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/tsweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.TSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		tkfrpq := ts[2]
		printOnce(i, tkfrpq)
		b.ReportMetric(tkfrpq.Cell("C2MN", "T=15s"), "C2MN-prec-T15")
	}
}

func BenchmarkFig17PerfectAccuracyVsMu(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/musweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.MuSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		pa := ts[0]
		printOnce(i, ts...)
		b.ReportMetric(pa.Cell("C2MN", "mu=3m"), "C2MN-PA-mu3")
		b.ReportMetric(pa.Cell("C2MN", "mu=7m"), "C2MN-PA-mu7")
	}
}

func BenchmarkFig18TkPRQPrecisionVsMu(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/musweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.MuSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		tkprq := ts[1]
		printOnce(i, tkprq)
		b.ReportMetric(tkprq.Cell("C2MN", "mu=7m"), "C2MN-prec-mu7")
	}
}

func BenchmarkFig19TkFRPQPrecisionVsMu(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		ts := cachedSweep(b, sc.Name+"/musweep", func() ([]*experiments.Table, error) {
			a, bq, c, err := experiments.MuSweep(sc)
			return []*experiments.Table{a, bq, c}, err
		})
		tkfrpq := ts[2]
		printOnce(i, tkfrpq)
		b.ReportMetric(tkfrpq.Cell("C2MN", "mu=7m"), "C2MN-prec-mu7")
	}
}

func BenchmarkAblationExactVsMCMCGradient(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationExactVsMCMC(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cell("Algorithm1", "RA"), "alg1-RA")
		b.ReportMetric(t.Cell("ExactPL", "RA"), "exact-RA")
	}
}

func BenchmarkAblationCandidateRadius(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCandidateRadius(sc)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		b.ReportMetric(t.Cells[len(t.RowNames)-1][3], "avg-cands-maxV")
	}
}

// BenchmarkAnnotationLatency measures the per-sequence annotation cost
// of a trained model — the paper reports <600 ms for a ~100-record
// sequence (§V-B1).
func BenchmarkAnnotationLatency(b *testing.B) {
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	test := data[len(data)/2:]
	records := 0
	for i := range test {
		records += test[i].P.Len()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range test {
			if _, _, err := ann.Annotate(&test[j].P); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(records)/float64(len(test)), "records/seq")
}

func benchAnnotationWorld(b *testing.B) (*Space, []LabeledSequence) {
	b.Helper()
	sc := experiments.Tiny()
	space, err := GenerateBuilding(sc.MallSpec, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := benchMobility()
	ds, err := GenerateMobility(space, spec, 5)
	if err != nil {
		b.Fatal(err)
	}
	return space, ds.Sequences
}

func benchMobility() MobilitySpec {
	return MobilitySpec{
		Objects:        10,
		Duration:       1500,
		MaxSpeed:       1.7,
		StayMin:        1,
		StayMax:        300,
		T:              5,
		Mu:             3,
		FalseFloorProb: 0.03,
		OutlierProb:    0.03,
	}
}

// BenchmarkAnnotateSingleSequence measures the steady-state cost of
// annotating one sequence through the pooled-workspace path — the
// per-request hot path of cmd/msserve. allocs/op covers only the
// returned labels and m-semantics once the pool is warm.
func BenchmarkAnnotateSingleSequence(b *testing.B) {
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := &data[len(data)/2].P
	if _, _, err := ann.Annotate(p); err != nil { // warm the pool
		b.Fatal(err)
	}
	b.ReportMetric(float64(p.Len()), "records/seq")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ann.Annotate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnotateThroughput measures sustained annotation throughput
// — sequences per second at fixed concurrency (GOMAXPROCS workers
// sharing the workspace pool) — the serving SLO a fleet's capacity
// planning divides by. The seqs/s custom metric is gated in CI (see
// ci/BENCH_baseline.json): cmd/benchjson fails the job when it drops
// below half the committed baseline, the higher-is-better analogue of
// the ns/op ratchet.
func BenchmarkAnnotateThroughput(b *testing.B) {
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	test := data[len(data)/2:]
	if _, _, err := ann.Annotate(&test[0].P); err != nil { // warm the pool
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := &test[int(next.Add(1))%len(test)].P
			if _, _, err := ann.Annotate(p); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
}

// BenchmarkAnnotateThroughputWatch is BenchmarkAnnotateThroughput with
// the push plane live: the engine publishes every store generation
// move into a notify hub carrying four standing subscribers, each
// re-executing its top-k on every signal, while a background feeder
// keeps the store moving for the whole measured window. Its seqs/s is
// deliberately NOT gated — the gated baseline stays the
// subscriber-free benchmark above — but both land in BENCH_infer.json,
// so a push plane that taxes the annotate path shows up as a widening
// gap between the two.
func BenchmarkAnnotateThroughputWatch(b *testing.B) {
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	test := data[len(data)/2:]

	hub := notify.NewHub()
	eng, err := NewEngine(ann, WithVenueID("bench"), WithChangeNotifier(hub.Publish))
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		sub := hub.Subscribe(nil, 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				case <-sub.Ready():
					sub.Take()
					eng.TopKPopularRegions(nil, Window{Start: 0, End: 1e18}, 10)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ls := test[i%len(test)]
			if _, err := eng.FeedAll(fmt.Sprintf("watch-%d", i), ls.P.Records); err != nil {
				return
			}
			if err := eng.Flush(); err != nil {
				return
			}
		}
	}()

	if _, _, err := eng.AnnotateCtx(context.Background(), &test[0].P); err != nil { // warm the pool
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := &test[int(next.Add(1))%len(test)].P
			if _, _, err := eng.AnnotateCtx(context.Background(), p); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkAnnotateAllParallel compares batch annotation throughput of
// a 1-worker pool against a GOMAXPROCS-sized pool on a generated mall
// workload — the Engine's AnnotateAllCtx scaling across cores.
func BenchmarkAnnotateAllParallel(b *testing.B) {
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	test := data[len(data)/2:]
	ps := make([]PSequence, 0, 32)
	for len(ps) < 32 {
		ps = append(ps, test[len(ps)%len(test)].P)
	}
	pools := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pools = append(pools, n)
	}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := NewEngine(ann, WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.AnnotateAllCtx(context.Background(), ps); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ps))*float64(b.N)/b.Elapsed().Seconds(), "seqs/s")
		})
	}
}

// BenchmarkTopKPopularRegions measures live-store top-k query latency
// against the number of retained sequences. The bucketed aggregate
// index answers from per-bucket region counts plus two boundary-bucket
// scans, so the cost across the sub-benchmarks should stay roughly
// flat while the store grows 16× — the sub-linear scaling CI tracks in
// BENCH_infer.json. The fixed-width recent window mirrors the common
// serving query ("the last ~15 minutes"); `stored-seqs` reports the
// store size per sub-benchmark.
func BenchmarkTopKPopularRegions(b *testing.B) {
	const (
		regions     = 32
		staysPerSeq = 3
		windowSecs  = 900
	)
	queryRegions := make([]RegionID, regions)
	for i := range queryRegions {
		queryRegions[i] = RegionID(i)
	}
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("stored=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			st := query.NewStore(0)
			t := 0.0
			for i := 0; i < n; i++ {
				ms := MSSequence{ObjectID: fmt.Sprintf("o%d", i)}
				for j := 0; j < staysPerSeq; j++ {
					d := 30 + rng.Float64()*120
					ms.Semantics = append(ms.Semantics, MSemantics{
						Region: RegionID(rng.Intn(regions)),
						Start:  t,
						End:    t + d,
						Event:  Stay,
					})
					t += d * 0.4 // overlapping, steadily advancing stream time
				}
				st.Add(ms)
			}
			w := Window{Start: t - windowSecs, End: t}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if top := st.TopKPopularRegions(queryRegions, w, 5); len(top) == 0 {
					b.Fatal("empty top-k over a populated window")
				}
			}
			b.ReportMetric(float64(n), "stored-seqs")
		})
	}
}

// BenchmarkQueryCached measures the engine's generation-keyed result
// cache on its hot path: the same top-k query re-asked while the store
// generation holds still. A warm-up query populates the per-venue LRU,
// so every timed iteration must come back from the cache without
// touching the index — the cacheless cost of the identical workload is
// BenchmarkTopKPopularRegions at the same store size. `hit-ratio`
// reports hits/(hits+misses) over the timed loop; CI gates it, so
// losing the cache (ratio → 0, ns/op → the uncached cost) fails the
// build.
func BenchmarkQueryCached(b *testing.B) {
	const (
		regions     = 32
		staysPerSeq = 3
		windowSecs  = 900
	)
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	queryRegions := make([]RegionID, regions)
	for i := range queryRegions {
		queryRegions[i] = RegionID(i)
	}
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("stored=%d", n), func(b *testing.B) {
			vr, err := NewVenueRegistry()
			if err != nil {
				b.Fatal(err)
			}
			e, err := vr.Register("bench", ann)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			t := 0.0
			for i := 0; i < n; i++ {
				ms := MSSequence{ObjectID: fmt.Sprintf("o%d", i)}
				for j := 0; j < staysPerSeq; j++ {
					d := 30 + rng.Float64()*120
					ms.Semantics = append(ms.Semantics, MSemantics{
						Region: RegionID(rng.Intn(regions)),
						Start:  t,
						End:    t + d,
						Event:  Stay,
					})
					t += d * 0.4
				}
				e.store.Add(ms)
			}
			q := Query{
				Kind:    QueryPopularRegions,
				Scope:   ScopeVenue,
				Venues:  []string{"bench"},
				Regions: queryRegions,
				Window:  &Window{Start: t - windowSecs, End: t},
				K:       5,
			}
			ctx := context.Background()
			if _, err := vr.Query(ctx, q); err != nil {
				b.Fatal(err)
			}
			before := e.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := vr.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Regions) == 0 {
					b.Fatal("empty cached top-k over a populated window")
				}
			}
			b.StopTimer()
			st := e.Stats()
			hits := st.QueryCacheHits - before.QueryCacheHits
			misses := st.QueryCacheMisses - before.QueryCacheMisses
			ratio := 0.0
			if hits+misses > 0 {
				ratio = float64(hits) / float64(hits+misses)
			}
			b.ReportMetric(ratio, "hit-ratio")
			b.ReportMetric(float64(n), "stored-seqs")
		})
	}
}

// BenchmarkSnapshotRestore measures the warm-restart hot path — the
// boot-time cost of bringing one venue's query index back from a
// serialized snapshot: read + checksum the c2mn-snapshot bytes, decode
// the index section, and rebuild the bucketed aggregates from the
// retained sequences. Tracked in BENCH_infer.json against the store
// size; `snapshot-bytes` reports the serialized size per sub-benchmark.
func BenchmarkSnapshotRestore(b *testing.B) {
	const (
		regions     = 32
		staysPerSeq = 3
	)
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("stored=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			st := query.NewStore(0)
			t := 0.0
			for i := 0; i < n; i++ {
				ms := MSSequence{ObjectID: fmt.Sprintf("o%d", i)}
				for j := 0; j < staysPerSeq; j++ {
					d := 30 + rng.Float64()*120
					ms.Semantics = append(ms.Semantics, MSemantics{
						Region: RegionID(rng.Intn(regions)),
						Start:  t,
						End:    t + d,
						Event:  Stay,
					})
					t += d * 0.4
				}
				st.Add(ms)
			}
			var buf bytes.Buffer
			if err := snapshot.Write(&buf, &snapshot.File{
				Header: snapshot.Header{Venue: "bench"},
				Index:  snapshot.EncodeIndex(st.SnapshotState()),
			}); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			b.ReportMetric(float64(len(data)), "snapshot-bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := snapshot.Read(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				ix, err := query.RestoreIndex(snapshot.DecodeIndex(f.Index))
				if err != nil {
					b.Fatal(err)
				}
				if seqs, _ := ix.Len(); seqs != n {
					b.Fatalf("restored %d sequences, want %d", seqs, n)
				}
			}
		})
	}
}

// BenchmarkAblationDistanceMatrix compares MIWD backed by the
// precomputed door-to-door matrix against on-demand Dijkstra (the
// paper pays ~991 MB of memory for its venue's matrix to make MIWD
// cheap; DESIGN.md §6).
func BenchmarkAblationDistanceMatrix(b *testing.B) {
	sc := benchScale(b)
	space, err := GenerateBuilding(sc.MallSpec, 1)
	if err != nil {
		b.Fatal(err)
	}
	bounds := space.Bounds()
	rng := rand.New(rand.NewSource(9))
	type pair struct{ a, c Location }
	pairs := make([]pair, 256)
	for i := range pairs {
		pairs[i] = pair{
			a: Loc(bounds.Min.X+rng.Float64()*(bounds.Max.X-bounds.Min.X),
				bounds.Min.Y+rng.Float64()*(bounds.Max.Y-bounds.Min.Y), rng.Intn(len(space.Floors()))),
			c: Loc(bounds.Min.X+rng.Float64()*(bounds.Max.X-bounds.Min.X),
				bounds.Min.Y+rng.Float64()*(bounds.Max.Y-bounds.Min.Y), rng.Intn(len(space.Floors()))),
		}
	}
	b.ReportMetric(float64(space.DistanceMatrixBytes())/(1<<20), "matrix-MB")
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = space.MIWD(p.a, p.c)
		}
	})
	b.Run("ondemand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = space.MIWDOnDemand(p.a, p.c)
		}
	})
}

// BenchmarkFleetTopK measures the fleet-scoped query path — the
// parallel per-shard scans plus the exact cross-venue merge behind
// VenueRegistry.Query — against the number of venues at a fixed total
// number of retained sequences. The per-shard indexes answer in
// near-constant time, so the fleet query cost tracked in
// BENCH_infer.json should grow with the merge width, not with the
// fleet's total retained history.
func BenchmarkFleetTopK(b *testing.B) {
	const (
		totalSeqs   = 8192
		regions     = 32
		staysPerSeq = 3
		windowSecs  = 900
	)
	space, data := benchAnnotationWorld(b)
	ann, err := Train(space, data[:len(data)/2], TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	queryRegions := make([]RegionID, regions)
	for i := range queryRegions {
		queryRegions[i] = RegionID(i)
	}
	for _, venues := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("venues=%d", venues), func(b *testing.B) {
			vr, err := NewVenueRegistry()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			maxT := 0.0
			for v := 0; v < venues; v++ {
				e, err := vr.Register(fmt.Sprintf("v%02d", v), ann)
				if err != nil {
					b.Fatal(err)
				}
				// The stores are loaded directly with synthetic
				// m-semantics: the benchmark isolates query fan-out and
				// merge cost from annotation cost.
				t := 0.0
				for i := 0; i < totalSeqs/venues; i++ {
					ms := MSSequence{ObjectID: fmt.Sprintf("v%d-o%d", v, i)}
					for j := 0; j < staysPerSeq; j++ {
						d := 30 + rng.Float64()*120
						ms.Semantics = append(ms.Semantics, MSemantics{
							Region: RegionID(rng.Intn(regions)),
							Start:  t,
							End:    t + d,
							Event:  Stay,
						})
						t += d * 0.4
					}
					e.store.Add(ms)
				}
				if t > maxT {
					maxT = t
				}
			}
			q := Query{
				Kind:    QueryPopularRegions,
				Scope:   ScopeFleet,
				Regions: queryRegions,
				Window:  &Window{Start: maxT - windowSecs, End: maxT},
				K:       5,
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := vr.Query(ctx, q)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Regions) == 0 {
					b.Fatal("empty fleet top-k over a populated window")
				}
			}
			b.ReportMetric(float64(venues), "venues")
		})
	}
}
