// Watchboard: a standard-library-only consumer of the continuous-query
// push plane. It opens one GET /v1/watch SSE stream against a running
// msserve or msrouter, folds snapshot/delta/resync events into a
// standing top-k board, reprints the board whenever it changes, and
// reconnects with Last-Event-ID when the connection drops — the full
// client contract in one file. The SSE parsing is hand-rolled here on
// purpose: an external consumer in any language needs nothing beyond
// this.
//
// Run against a serving process (see the README quickstart to start
// one):
//
//	go run ./examples/watchboard -base http://localhost:8080 -scope fleet -k 5
//	go run ./examples/watchboard -base http://localhost:8080 -venue north
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

type row struct {
	Region int `json:"region"`
	Count  int `json:"count"`
}

type snapshotData struct {
	Kind    string `json:"kind"`
	K       int    `json:"k"`
	Regions []row  `json:"regions"`
}

type deltaData struct {
	Entered []row `json:"entered"`
	Changed []row `json:"changed"`
	Left    []row `json:"left"`
}

type goodbyeData struct {
	Reason string `json:"reason"`
}

// board is the folded state of the standing query. Fold order matters
// only within one stream: snapshot/resync replace, delta edits.
type board struct {
	rows map[int]int
}

func (b *board) replace(rows []row) {
	b.rows = make(map[int]int, len(rows))
	for _, r := range rows {
		b.rows[r.Region] = r.Count
	}
}

func (b *board) apply(d deltaData) {
	if b.rows == nil {
		b.rows = map[int]int{}
	}
	for _, r := range d.Entered {
		b.rows[r.Region] = r.Count
	}
	for _, r := range d.Changed {
		b.rows[r.Region] = r.Count
	}
	for _, r := range d.Left {
		delete(b.rows, r.Region)
	}
}

func (b *board) print(id string) {
	rows := make([]row, 0, len(b.rows))
	for rg, c := range b.rows {
		rows = append(rows, row{Region: rg, Count: c})
	}
	// Canonical top-k order: count desc, region asc — the same order
	// the server answers queries in.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Region < rows[j].Region
	})
	fmt.Printf("—— top-%d @ %s ——\n", len(rows), id)
	for i, r := range rows {
		fmt.Printf("%2d. region %3d  %5d visits\n", i+1, r.Region, r.Count)
	}
}

// event is one parsed SSE frame: comment heartbeats have name "" and
// the comment text in data.
type event struct {
	name    string
	id      string
	data    []byte
	comment bool
}

// readEvents parses text/event-stream frames per the WHATWG spec
// subset the server emits: "event:", "id:", "data:" and ":" comment
// lines, frames separated by a blank line.
func readEvents(r *bufio.Reader, emit func(event) bool) error {
	var ev event
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if ev.name != "" || len(ev.data) > 0 || ev.comment {
				if !emit(ev) {
					return nil
				}
			}
			ev = event{}
		case strings.HasPrefix(line, ":"):
			ev.comment = true
			ev.data = []byte(strings.TrimPrefix(strings.TrimPrefix(line, ":"), " "))
		case strings.HasPrefix(line, "event:"):
			ev.name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			ev.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			if len(ev.data) > 0 {
				ev.data = append(ev.data, '\n')
			}
			ev.data = append(ev.data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		}
	}
}

func main() {
	log.SetFlags(0)
	base := flag.String("base", "http://localhost:8080", "msserve or msrouter base URL")
	venue := flag.String("venue", "", "watch a single venue (empty = use -scope/-venues)")
	venues := flag.String("venues", "", "comma-separated explicit venue set")
	scope := flag.String("scope", "", "fleet to watch every loaded venue")
	k := flag.Int("k", 5, "top-k size")
	idle := flag.Duration("idle", time.Minute,
		"reconnect when no frame (not even a heartbeat) arrives within this window; must exceed the server's heartbeat period")
	flag.Parse()

	// The board folds region rows; frequent-pairs streams work the same
	// way over the *_pairs delta fields.
	q := url.Values{}
	q.Set("kind", "popular-regions")
	q.Set("k", fmt.Sprint(*k))
	if *venues != "" {
		q.Set("venues", *venues)
	}
	if *scope != "" {
		q.Set("scope", *scope)
	}
	watchURL := *base + "/v1/watch?" + q.Encode()
	if *venue != "" {
		watchURL = *base + "/v1/venues/" + url.PathEscape(*venue) + "/watch?" + q.Encode()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var b board
	lastID := "" // sent back as Last-Event-ID so reconnects resume, not replay
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, watchURL, nil)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Accept", "text/event-stream")
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("connect: %v (retrying)", err)
			time.Sleep(time.Second)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			log.Fatalf("watch: HTTP %s", resp.Status)
		}
		log.Printf("subscribed: %s", watchURL)
		// Heartbeats are the liveness contract: a healthy server always
		// produces a frame within its heartbeat period, so a window with
		// nothing at all means the connection is dead even if TCP says
		// otherwise (half-open after a server crash, stalled middlebox).
		// Closing the body is what unblocks the read below.
		stall := time.AfterFunc(*idle, func() { resp.Body.Close() })
		err = readEvents(bufio.NewReader(resp.Body), func(ev event) bool {
			stall.Reset(*idle)
			if ev.comment {
				return true // heartbeat: the stream is alive, nothing changed
			}
			if ev.id != "" {
				lastID = ev.id
			}
			switch ev.name {
			case "snapshot", "resync":
				var snap snapshotData
				if err := json.Unmarshal(ev.data, &snap); err != nil {
					log.Printf("bad %s payload: %v", ev.name, err)
					return true
				}
				b.replace(snap.Regions)
				b.print(ev.id)
			case "delta":
				var d deltaData
				if err := json.Unmarshal(ev.data, &d); err != nil {
					log.Printf("bad delta payload: %v", err)
					return true
				}
				b.apply(d)
				b.print(ev.id)
			case "goodbye":
				var g goodbyeData
				_ = json.Unmarshal(ev.data, &g)
				log.Printf("server said goodbye (%s)", g.Reason)
				return g.Reason == "draining" // reconnect elsewhere only makes sense for drains
			}
			return true
		})
		stall.Stop()
		resp.Body.Close()
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			log.Printf("stream ended: %v (reconnecting with Last-Event-ID %q)", err, lastID)
		} else {
			return // terminal goodbye
		}
		time.Sleep(time.Second)
	}
}
