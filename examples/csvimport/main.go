// CSV import: the production ingestion path — raw positioning logs in
// object,x,y,floor,t CSV form are cleaned with the paper's η/ψ
// preprocessing (§V-B1), annotated with a trained model, and queried.
//
// Run with:
//
//	go run ./examples/csvimport
package main

import (
	"bytes"
	"fmt"
	"log"

	"c2mn"
	"c2mn/internal/seq"
	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)

	// Train an annotator on simulated history (stands in for an
	// annotated training corpus).
	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 6)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := c2mn.GenerateMobility(space, sim.DefaultMobility(10, 1500), 7)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := c2mn.Train(space, hist.Sequences, c2mn.TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fresh traffic arrives as a raw CSV feed — simulate one and
	// serialise it the way a positioning system would.
	fresh, err := c2mn.GenerateMobility(space, sim.DefaultMobility(4, 1200), 8)
	if err != nil {
		log.Fatal(err)
	}
	streams := map[string][]c2mn.Record{}
	for i := range fresh.Sequences {
		p := &fresh.Sequences[i].P
		streams[p.ObjectID] = p.Records
	}
	var feed bytes.Buffer
	if err := seq.WriteRecordsCSV(&feed, streams); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingesting %d bytes of CSV...\n", feed.Len())

	// Ingest: parse, group per object, η/ψ-preprocess into
	// p-sequences (η = 120 s gap split, ψ = 60 s minimum duration).
	parsed, err := seq.ReadRecordsCSV(&feed)
	if err != nil {
		log.Fatal(err)
	}
	var pseqs []c2mn.PSequence
	for id, records := range parsed {
		pseqs = append(pseqs, c2mn.Preprocess(id, records, 120, 60)...)
	}
	fmt.Printf("%d objects -> %d p-sequences after preprocessing\n", len(parsed), len(pseqs))

	// Annotate and query.
	mss, err := ann.AnnotateAll(pseqs)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, ms := range mss {
		total += len(ms.Semantics)
	}
	fmt.Printf("annotated %d m-semantics\n", total)

	top := c2mn.TopKPopularRegions(mss, space.Regions(), c2mn.Window{Start: 0, End: 1200}, 3)
	fmt.Println("top visited regions in the feed:")
	for i, rc := range top {
		fmt.Printf("%3d. %-10s %d visits\n", i+1, space.Region(rc.Region).Name, rc.Count)
	}
}
