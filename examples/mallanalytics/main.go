// Mall analytics: the paper's §I motivation — a shop owner estimating
// the conversion rate of people who entered the shop (stays, i.e.
// purposeful visits, vs passes). We simulate a mall, train a C2MN
// annotator, annotate held-out traffic, and report per-shop footfall
// and conversion rates against the simulation's ground truth.
//
// Run with:
//
//	go run ./examples/mallanalytics
package main

import (
	"fmt"
	"log"
	"sort"

	"c2mn"
	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A small mall-like venue keeps the example quick; swap in
	// sim.MallBuilding() for the full 7-floor, 202-shop profile.
	spec := sim.SmallBuilding()
	space, err := c2mn.GenerateBuilding(spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	mspec := sim.DefaultMobility(24, 2400)
	mspec.StayMax = 400
	ds, err := c2mn.GenerateMobility(space, mspec, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Sequences[:16], ds.Sequences[16:]

	ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
		V:              6,
		Exact:          true,
		TuneClustering: true,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Annotate the held-out visitors and aggregate per-shop footfall.
	type shopStats struct{ stays, passes int }
	predStats := map[c2mn.RegionID]*shopStats{}
	truthStats := map[c2mn.RegionID]*shopStats{}
	bump := func(m map[c2mn.RegionID]*shopStats, ms []c2mn.MSemantics) {
		for _, s := range ms {
			st := m[s.Region]
			if st == nil {
				st = &shopStats{}
				m[s.Region] = st
			}
			if s.Event == c2mn.Stay {
				st.stays++
			} else {
				st.passes++
			}
		}
	}
	for i := range test {
		_, ms, err := ann.Annotate(&test[i].P)
		if err != nil {
			log.Fatal(err)
		}
		bump(predStats, ms.Semantics)
		truth := c2mn.Merge(&test[i].P, test[i].Labels)
		bump(truthStats, truth.Semantics)
	}

	// Report the busiest shops with predicted vs true conversion.
	type row struct {
		name                string
		visits              int
		predConv, truthConv float64
	}
	var rows []row
	for _, r := range space.Regions() {
		p, t := predStats[r], truthStats[r]
		if p == nil || t == nil || p.stays+p.passes < 3 {
			continue
		}
		rows = append(rows, row{
			name:      space.Region(r).Name,
			visits:    p.stays + p.passes,
			predConv:  float64(p.stays) / float64(p.stays+p.passes),
			truthConv: float64(t.stays) / float64(t.stays+t.passes),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].visits > rows[j].visits })
	fmt.Println("shop      traffic   conversion(pred)  conversion(truth)")
	for i, r := range rows {
		if i >= 10 {
			break
		}
		fmt.Printf("%-10s %6d   %15.0f%%  %16.0f%%\n", r.name, r.visits, 100*r.predConv, 100*r.truthConv)
	}
}
