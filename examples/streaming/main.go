// Streaming: wrap a trained annotator in an Engine, feed raw
// positioning records one at a time — interleaved across objects, as a
// positioning system delivers them — and watch ms-sequences come out
// of the online η-gap segmenter while the live top-k queries answer
// mid-stream.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"c2mn"
	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate a venue and a labeled workload, and train on half.
	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := sim.DefaultMobility(10, 1500)
	spec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, spec, 5)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := c2mn.Train(space, ds.Sequences[:7], c2mn.TrainOptions{
		V: 6, Exact: true, TuneClustering: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the serving engine: sequences completed by the online
	// segmenter are annotated and announced through the callback.
	engine, err := c2mn.NewEngine(ann,
		c2mn.WithPreprocess(120, 60),
		c2mn.WithOnSequence(func(ms c2mn.MSSequence) {
			fmt.Printf("completed %s: %d m-semantics\n", ms.ObjectID, len(ms.Semantics))
			for _, m := range ms.Semantics {
				fmt.Printf("  (%s, [%.0fs, %.0fs], %s)\n",
					space.Region(m.Region).Name, m.Start, m.End, m.Event)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay the held-out objects' raw records in timestamp order,
	// interleaved across objects — the engine keeps one open fragment
	// per object and closes it when an η-gap appears.
	test := ds.Sequences[7:]
	type cursor struct {
		id   string
		recs []c2mn.Record
		next int
	}
	cursors := make([]*cursor, len(test))
	for i := range test {
		cursors[i] = &cursor{id: fmt.Sprintf("visitor-%d", i), recs: test[i].P.Records}
	}
	for remaining := true; remaining; {
		remaining = false
		// Feed the record with the earliest timestamp next.
		var pick *cursor
		for _, c := range cursors {
			if c.next >= len(c.recs) {
				continue
			}
			remaining = true
			if pick == nil || c.recs[c.next].T < pick.recs[pick.next].T {
				pick = c
			}
		}
		if pick == nil {
			break
		}
		if err := engine.Feed(pick.id, pick.recs[pick.next]); err != nil {
			log.Fatal(err)
		}
		pick.next++
	}

	// 4. End of stream: close the trailing fragments.
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("\nfed %d records, emitted %d ms-sequences\n", st.FedRecords, st.EmittedSequences)

	// 5. Query the live store: where did visitors actually stay?
	top := engine.TopKPopularRegions(space.Regions(), c2mn.Window{Start: 0, End: spec.Duration}, 3)
	fmt.Println("\ntop-3 popular regions over the stream:")
	for _, rc := range top {
		fmt.Printf("  %-24s %d stays\n", space.Region(rc.Region).Name, rc.Count)
	}
}
