// Quickstart: build a tiny venue by hand, fabricate a labeled
// trajectory, train an annotator, and annotate a fresh positioning
// sequence into m-semantics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"c2mn"
	"c2mn/internal/geom"
)

func main() {
	log.SetFlags(0)

	// 1. Model the venue: a hallway with three shops, as in the
	// paper's Fig. 1 (a snack bar, a market, a convenience store).
	b := c2mn.NewBuilder()
	hall := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 0), geom.Pt(30, 4)))
	deli := b.AddPartition(0, geom.RectPoly(geom.Pt(0, 4), geom.Pt(10, 14)))
	market := b.AddPartition(0, geom.RectPoly(geom.Pt(10, 4), geom.Pt(20, 14)))
	seven := b.AddPartition(0, geom.RectPoly(geom.Pt(20, 4), geom.Pt(30, 14)))
	b.AddDoor(geom.Pt(5, 4), hall, deli)
	b.AddDoor(geom.Pt(15, 4), hall, market)
	b.AddDoor(geom.Pt(25, 4), hall, seven)
	rDeli := b.AddRegion("John's Hotdog Deli", deli)
	rMarket := b.AddRegion("Food Market", market)
	rSeven := b.AddRegion("7-Eleven", seven)
	space, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fabricate labeled training trajectories: dwell in one shop,
	// walk the hallway, dwell in another.
	rng := rand.New(rand.NewSource(7))
	var train []c2mn.LabeledSequence
	centers := map[c2mn.RegionID][2]float64{
		rDeli: {5, 9}, rMarket: {15, 9}, rSeven: {25, 9},
	}
	regions := []c2mn.RegionID{rDeli, rMarket, rSeven}
	for i := 0; i < 12; i++ {
		from := regions[rng.Intn(3)]
		to := regions[(int(from)+1+rng.Intn(2))%3]
		train = append(train, makeTrajectory(fmt.Sprintf("visitor-%d", i), from, to, centers, rng))
	}

	// 3. Train the annotator (the exact trainer keeps the example
	// fast; drop Exact for the paper's Algorithm 1).
	ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
		V:              4,
		Exact:          true,
		TuneClustering: true,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Annotate a fresh, unlabeled positioning sequence.
	fresh := makeTrajectory("tourist", rDeli, rSeven, centers, rng)
	_, ms, err := ann.Annotate(&fresh.P)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m-semantics for %s:\n", fresh.P.ObjectID)
	for _, m := range ms.Semantics {
		fmt.Printf("  (%s, [%.0fs, %.0fs], %s)\n",
			space.Region(m.Region).Name, m.Start, m.End, m.Event)
	}
}

// makeTrajectory simulates: stay at `from`, pass through the hallway,
// stay at `to`, with ~1 m positioning noise.
func makeTrajectory(id string, from, to c2mn.RegionID, centers map[c2mn.RegionID][2]float64, rng *rand.Rand) c2mn.LabeledSequence {
	var ls c2mn.LabeledSequence
	ls.P.ObjectID = id
	t := 0.0
	add := func(x, y float64, r c2mn.RegionID, e c2mn.Event, dt float64) {
		t += dt
		ls.P.Records = append(ls.P.Records, c2mn.Record{
			Loc: c2mn.Loc(x+rng.NormFloat64(), y+rng.NormFloat64(), 0),
			T:   t,
		})
		ls.Labels.Regions = append(ls.Labels.Regions, r)
		ls.Labels.Events = append(ls.Labels.Events, e)
	}
	cf, ct := centers[from], centers[to]
	for i := 0; i < 6; i++ {
		add(cf[0], cf[1], from, c2mn.Stay, 10)
	}
	add(cf[0], 5, from, c2mn.Pass, 3)
	mid := (cf[0] + ct[0]) / 2
	midRegion := from
	if mid >= 10 && mid < 20 {
		midRegion = 1
	} else if mid >= 20 {
		midRegion = 2
	}
	add(mid, 2, midRegion, c2mn.Pass, 3)
	add(ct[0], 5, to, c2mn.Pass, 3)
	for i := 0; i < 6; i++ {
		add(ct[0], ct[1], to, c2mn.Stay, 10)
	}
	return ls
}
