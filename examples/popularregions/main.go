// Popular regions: the paper's §V-B4 query study in miniature — run
// top-k popular region (TkPRQ) and top-k frequent region pair (TkFRPQ)
// queries over C2MN-annotated m-semantics and compare with the ground
// truth ranking.
//
// Run with:
//
//	go run ./examples/popularregions
package main

import (
	"fmt"
	"log"

	"c2mn"
	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)

	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 2)
	if err != nil {
		log.Fatal(err)
	}
	mspec := sim.DefaultMobility(24, 2400)
	mspec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, mspec, 3)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Sequences[:16], ds.Sequences[16:]

	ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
		V:              6,
		Exact:          true,
		TuneClustering: true,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Annotated and ground-truth m-semantics of the held-out traffic.
	var pred, truth []c2mn.MSSequence
	for i := range test {
		_, ms, err := ann.Annotate(&test[i].P)
		if err != nil {
			log.Fatal(err)
		}
		pred = append(pred, ms)
		truth = append(truth, c2mn.Merge(&test[i].P, test[i].Labels))
	}

	const k = 5
	window := c2mn.Window{Start: 0, End: 2400}
	q := space.Regions()

	fmt.Printf("TkPRQ: top-%d popular regions (visits = stays)\n", k)
	fmt.Println("rank   annotated            ground truth")
	pTop := c2mn.TopKPopularRegions(pred, q, window, k)
	tTop := c2mn.TopKPopularRegions(truth, q, window, k)
	for i := 0; i < k; i++ {
		var a, b string
		if i < len(pTop) {
			a = fmt.Sprintf("%s (%d)", space.Region(pTop[i].Region).Name, pTop[i].Count)
		}
		if i < len(tTop) {
			b = fmt.Sprintf("%s (%d)", space.Region(tTop[i].Region).Name, tTop[i].Count)
		}
		fmt.Printf("%4d   %-20s %-20s\n", i+1, a, b)
	}
	fmt.Printf("precision: %.2f\n\n", precision(pTop, tTop, k))

	fmt.Printf("TkFRPQ: top-%d co-visited region pairs\n", k)
	pPairs := c2mn.TopKFrequentPairs(pred, q, window, k)
	tPairs := c2mn.TopKFrequentPairs(truth, q, window, k)
	for i := 0; i < k && i < len(pPairs); i++ {
		fmt.Printf("%4d   %s + %s (%d objects)\n", i+1,
			space.Region(pPairs[i].A).Name, space.Region(pPairs[i].B).Name, pPairs[i].Count)
	}
	hit := 0
	want := map[[2]c2mn.RegionID]bool{}
	for i := 0; i < k && i < len(tPairs); i++ {
		want[[2]c2mn.RegionID{tPairs[i].A, tPairs[i].B}] = true
	}
	for i := 0; i < k && i < len(pPairs); i++ {
		if want[[2]c2mn.RegionID{pPairs[i].A, pPairs[i].B}] {
			hit++
		}
	}
	if len(want) > 0 {
		fmt.Printf("pair precision: %.2f\n", float64(hit)/float64(len(want)))
	}
}

func precision(got, want []c2mn.RegionCount, k int) float64 {
	set := map[c2mn.RegionID]bool{}
	for i := 0; i < k && i < len(want); i++ {
		set[want[i].Region] = true
	}
	if len(set) == 0 {
		return 0
	}
	hit := 0
	for i := 0; i < k && i < len(got); i++ {
		if set[got[i].Region] {
			hit++
		}
	}
	return float64(hit) / float64(len(set))
}
