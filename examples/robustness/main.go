// Robustness: the paper's §V-C question — how gracefully does the
// annotation degrade as positioning data gets sparser (larger maximum
// positioning period T) and noisier (larger error factor μ)? We train
// one C2MN per condition and report perfect accuracy, mirroring the
// shape of the paper's Figs. 14 and 17.
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"c2mn"
	"c2mn/internal/sim"
)

func main() {
	log.SetFlags(0)

	space, err := c2mn.GenerateBuilding(sim.SmallBuilding(), 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("effect of temporal sparsity (mu = 4m):")
	fmt.Println("T(s)    PA")
	for _, t := range []float64{5, 10, 15} {
		pa := runCondition(space, t, 4)
		fmt.Printf("%4.0f  %.3f\n", t, pa)
	}

	fmt.Println("\neffect of positioning error (T = 5s):")
	fmt.Println("mu(m)   PA")
	for _, mu := range []float64{2, 4, 6} {
		pa := runCondition(space, 5, mu)
		fmt.Printf("%5.0f %.3f\n", mu, pa)
	}
}

// runCondition generates a workload at (T, mu), trains, and returns
// the perfect accuracy on held-out sequences.
func runCondition(space *c2mn.Space, t, mu float64) float64 {
	mspec := sim.DefaultMobility(20, 1800)
	mspec.T = t
	mspec.Mu = mu
	mspec.StayMax = 300
	ds, err := c2mn.GenerateMobility(space, mspec, 5)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Sequences[:14], ds.Sequences[14:]
	ann, err := c2mn.Train(space, train, c2mn.TrainOptions{
		V:              6,
		Exact:          true,
		TuneClustering: true,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var both, n int
	for i := range test {
		labels, _, err := ann.Annotate(&test[i].P)
		if err != nil {
			log.Fatal(err)
		}
		for j := range labels.Regions {
			n++
			if labels.Regions[j] == test[i].Labels.Regions[j] &&
				labels.Events[j] == test[i].Labels.Events[j] {
				both++
			}
		}
	}
	return float64(both) / float64(n)
}
